//! Figure 5: static thresholds vs self-tuning.
//!
//! Deadlock recovery; uniform-random and butterfly traffic; `Base`, two
//! fixed global thresholds (250 ≈ 8% occupancy and 50 ≈ 1.6%), and `Tune`.
//! The point to reproduce: 250 works well for uniform random but cannot
//! prevent butterfly saturation, 50 protects butterfly but over-throttles
//! uniform random, and the self-tuner adapts to both.

use crate::runner::{JobError, SweepError};
use crate::table::fnum;
use crate::{steady_config, sweep_rates_for, try_run_point, NetPreset, Scale, SweepCtx, Table};
use stcc::Scheme;
use traffic::Pattern;
use wormsim::DeadlockMode;

/// The paper's static thresholds (in full buffers; 8% and 1.6% of 3072).
/// Other presets rescale these: see [`NetPreset::static_thresholds`].
pub const STATIC_THRESHOLDS: [u32; 2] = [250, 50];

/// Runs the Figure 5 sweeps on the paper network, fanned across `ctx`'s
/// pool.
///
/// # Errors
///
/// Returns the first failing sweep point.
pub fn generate(scale: Scale, ctx: &SweepCtx) -> Result<Table, SweepError> {
    generate_on(NetPreset::Paper, scale, ctx)
}

/// Runs the Figure 5 sweeps on a chosen network preset.
///
/// # Errors
///
/// Returns the first failing sweep point.
pub fn generate_on(net: NetPreset, scale: Scale, ctx: &SweepCtx) -> Result<Table, SweepError> {
    let mut t = Table::new(
        "Figure 5 — static thresholds vs self-tuning (deadlock recovery)",
        &[
            "pattern",
            "scheme",
            "offered_pkts",
            "tput_pkts",
            "tput_flits",
            "net_latency",
        ],
    );
    let schemes: Vec<Scheme> = [Scheme::Base]
        .into_iter()
        .chain(
            net.static_thresholds()
                .into_iter()
                .map(|threshold| Scheme::Static {
                    threshold,
                    sideband: net.sideband(),
                }),
        )
        .chain([net.tuned()])
        .collect();
    let mut jobs = Vec::new();
    for pattern in [Pattern::UniformRandom, Pattern::Butterfly] {
        for scheme in &schemes {
            for (i, &rate) in sweep_rates_for(scale).iter().enumerate() {
                jobs.push((pattern.clone(), scheme.clone(), rate, i));
            }
        }
    }
    let rows = ctx.try_run_rows(
        jobs,
        |(pattern, scheme, rate, _)| format!("fig5 {} {} @ {rate}", pattern.name(), scheme.label()),
        |(pattern, scheme, rate, i)| {
            let cfg = steady_config(
                net.net(DeadlockMode::PAPER_RECOVERY),
                scheme.clone(),
                pattern.clone(),
                rate,
                scale,
                0xF16_0005 + i as u64,
            );
            let r = try_run_point(cfg)?;
            Ok::<_, JobError>(vec![vec![
                pattern.name().to_owned(),
                scheme.label(),
                fnum(rate),
                fnum(r.tput_packets),
                fnum(r.tput_flits),
                fnum(r.latency),
            ]])
        },
    )?;
    t.extend(rows);
    Ok(t)
}
