//! Figure 2: throughput vs full buffers.
//!
//! The paper's Figure 2 is a conceptual sketch: as offered load rises, both
//! the full-buffer count and the delivered bandwidth rise; past saturation
//! bandwidth falls while full buffers keep climbing — which is why a
//! full-buffer threshold (point B, the knee) is a usable throttle set-point.
//! We regenerate it with data: sweep offered load on the base network and
//! report measured (full-buffer occupancy, delivered bandwidth) pairs.

use crate::runner::{JobError, SweepError};
use crate::table::fnum;
use crate::{steady_config, sweep_rates_for, NetPreset, Scale, SweepCtx, Table};
use simstats::GaugeSeries;
use stcc::{Scheme, Simulation};
use traffic::Pattern;
use wormsim::DeadlockMode;

/// Runs the Figure 2 sweep (deadlock recovery, uniform random, base) on
/// the paper network.
///
/// # Errors
///
/// Returns the first failing sweep point.
pub fn generate(scale: Scale, ctx: &SweepCtx) -> Result<Table, SweepError> {
    generate_on(NetPreset::Paper, scale, ctx)
}

/// Runs the Figure 2 sweep on a chosen network preset.
///
/// # Errors
///
/// Returns the first failing sweep point.
pub fn generate_on(net: NetPreset, scale: Scale, ctx: &SweepCtx) -> Result<Table, SweepError> {
    let mut t = Table::new(
        "Figure 2 — delivered bandwidth vs full-buffer occupancy (base, deadlock recovery)",
        &[
            "offered_pkts",
            "avg_full_buffers",
            "full_buffer_pct",
            "tput_flits",
        ],
    );
    let jobs: Vec<(usize, f64)> = sweep_rates_for(scale).into_iter().enumerate().collect();
    let rows = ctx.try_run_rows(
        jobs,
        |&(_, rate)| format!("fig2 base @ {rate}"),
        |(i, rate)| {
            let cfg = steady_config(
                net.net(DeadlockMode::PAPER_RECOVERY),
                Scheme::Base,
                Pattern::UniformRandom,
                rate,
                scale,
                0xF16_0002 + i as u64,
            );
            let warmup = cfg.warmup;
            let mut sim = Simulation::new(cfg)
                .map_err(|e| JobError::Failed(format!("bad fig2 config: {e}")))?;
            let mut occupancy = GaugeSeries::new();
            crate::run::drive(&mut sim, &format!("fig2 base @ {rate}"), |sim| {
                if sim.now() >= warmup && sim.now().is_multiple_of(256) {
                    occupancy.sample(sim.now(), f64::from(sim.network().full_buffer_count()));
                }
            })?;
            let s = sim
                .summary()
                .map_err(|e| JobError::Failed(format!("fig2 summary: {e}")))?;
            let avg_full = occupancy.points().iter().map(|&(_, v)| v).sum::<f64>()
                / occupancy.points().len().max(1) as f64;
            let total = f64::from(sim.network().total_vc_buffers());
            Ok::<_, JobError>(vec![vec![
                fnum(rate),
                fnum(avg_full),
                fnum(100.0 * avg_full / total),
                fnum(s.throughput_flits()),
            ]])
        },
    )?;
    t.extend(rows);
    Ok(t)
}
