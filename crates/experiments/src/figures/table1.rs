//! Table 1: the tuning decision table.
//!
//! Not a simulation — the table *is* the algorithm. This module prints the
//! implemented decision for every (bandwidth-drop, throttling) combination,
//! so the artifact can be diffed against the paper's Table 1 directly.

use crate::Table;
use stcc::{decide, TuneAction};

/// Tabulates the implemented decision table.
#[must_use]
pub fn generate() -> Table {
    let mut t = Table::new(
        "Table 1 — tuning decision table",
        &["drop_in_bandwidth", "currently_throttling", "action"],
    );
    for drop in [true, false] {
        for throttling in [true, false] {
            let action = match decide(drop, throttling) {
                TuneAction::Decrement => "decrement",
                TuneAction::Increment => "increment",
                TuneAction::NoChange => "no change",
            };
            t.push(vec![
                if drop { "yes" } else { "no" }.to_owned(),
                if throttling { "yes" } else { "no" }.to_owned(),
                action.to_owned(),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_table_1() {
        let t = generate();
        let rows: Vec<Vec<&str>> = t
            .rows()
            .iter()
            .map(|r| r.iter().map(String::as_str).collect())
            .collect();
        assert_eq!(
            rows,
            vec![
                vec!["yes", "yes", "decrement"],
                vec!["yes", "no", "decrement"],
                vec!["no", "yes", "increment"],
                vec!["no", "no", "no change"],
            ]
        );
    }
}
