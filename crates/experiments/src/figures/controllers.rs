//! Controller-zoo head-to-head: every registered congestion controller
//! over every traffic pattern.
//!
//! This is the figure the pluggable-controller refactor exists for: the
//! paper claims the self-tuner beats any fixed policy *across patterns*,
//! and this table pits it against the local baseline and the three rival
//! adaptive schemes (AIMD, DEC-bit, BBR-flavored) plus a representative
//! static threshold, with per-controller throughput, latency and Jain
//! fairness columns.

use crate::runner::{JobError, SweepError};
use crate::table::fnum;
use crate::{steady_config, sweep_rates_for, try_run_point, NetPreset, Scale, SweepCtx, Table};
use stcc::Scheme;
use traffic::Pattern;
use wormsim::DeadlockMode;

/// Every traffic pattern the harness knows (the hotspot at node 0 with the
/// literature's 25% skew).
#[must_use]
pub fn all_patterns() -> Vec<Pattern> {
    vec![
        Pattern::UniformRandom,
        Pattern::BitReversal,
        Pattern::PerfectShuffle,
        Pattern::Butterfly,
        Pattern::BitComplement,
        Pattern::Transpose,
        Pattern::Hotspot {
            target: 0,
            fraction: 0.25,
        },
    ]
}

/// The full head-to-head roster on a network preset: every registry name
/// plus the preset's representative (higher) static threshold.
#[must_use]
pub fn roster(net: NetPreset) -> Vec<Scheme> {
    let sideband = net.sideband();
    let mut schemes: Vec<Scheme> = Scheme::registry_names()
        .iter()
        .map(|name| Scheme::by_name(name, &sideband).expect("registry names resolve"))
        .collect();
    schemes.push(Scheme::Static {
        threshold: net.static_thresholds()[0],
        sideband,
    });
    schemes
}

/// Runs the head-to-head on the paper network.
///
/// # Errors
///
/// Returns the first failing sweep point.
pub fn generate(scale: Scale, ctx: &SweepCtx) -> Result<Table, SweepError> {
    generate_on(NetPreset::Paper, scale, ctx)
}

/// Runs the head-to-head on a chosen network preset with the full roster.
///
/// # Errors
///
/// Returns the first failing sweep point.
pub fn generate_on(net: NetPreset, scale: Scale, ctx: &SweepCtx) -> Result<Table, SweepError> {
    generate_filtered(net, scale, ctx, &roster(net))
}

/// Runs the head-to-head over an explicit scheme list (the binary's
/// `--controllers` filter).
///
/// # Errors
///
/// Returns the first failing sweep point.
pub fn generate_filtered(
    net: NetPreset,
    scale: Scale,
    ctx: &SweepCtx,
    schemes: &[Scheme],
) -> Result<Table, SweepError> {
    let mut t = Table::new(
        "Controller zoo — every controller × every traffic pattern (deadlock recovery)",
        &[
            "pattern",
            "scheme",
            "offered_pkts",
            "tput_pkts",
            "tput_flits",
            "net_latency",
            "fairness",
            "throttled",
        ],
    );
    let mut jobs = Vec::new();
    for pattern in all_patterns() {
        for scheme in schemes {
            for (i, &rate) in sweep_rates_for(scale).iter().enumerate() {
                jobs.push((pattern.clone(), scheme.clone(), rate, i));
            }
        }
    }
    let rows = ctx.try_run_rows(
        jobs,
        |(pattern, scheme, rate, _)| {
            format!("controllers {} {} @ {rate}", pattern.name(), scheme.label())
        },
        |(pattern, scheme, rate, i)| {
            let cfg = steady_config(
                net.net(DeadlockMode::PAPER_RECOVERY),
                scheme.clone(),
                pattern.clone(),
                rate,
                scale,
                0xC0_2200 + i as u64,
            );
            let r = try_run_point(cfg)?;
            Ok::<_, JobError>(vec![vec![
                pattern.name().to_owned(),
                scheme.label(),
                fnum(rate),
                fnum(r.tput_packets),
                fnum(r.tput_flits),
                fnum(r.latency),
                fnum(r.fairness),
                r.throttled.to_string(),
            ]])
        },
    )?;
    t.extend(rows);
    Ok(t)
}
