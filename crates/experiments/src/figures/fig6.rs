//! Figure 6: the offered bursty load.
//!
//! Prints the burst schedule itself (offered injection rate and pattern vs
//! time): alternating low/high phases, each high burst using a different
//! communication pattern (uniform random → bit reversal → perfect shuffle →
//! butterfly).

use crate::table::fnum;
use crate::{Scale, Table};
use traffic::Workload;

/// The bursty workload at a given scale (the paper's 50 000-cycle phases at
/// paper scale, proportionally shorter otherwise).
#[must_use]
pub fn workload(scale: Scale) -> Workload {
    Workload::bursty(scale.bursty_phase(), 1_500, 15)
}

/// Total cycles for the bursty runs: nine phases (Figure 6's 450 000 cycles
/// at paper scale).
#[must_use]
pub fn cycles(scale: Scale) -> u64 {
    9 * scale.bursty_phase()
}

/// Tabulates the offered schedule.
#[must_use]
pub fn generate(scale: Scale) -> Table {
    let mut t = Table::new(
        "Figure 6 — offered bursty load",
        &["phase_start", "phase_end", "pattern", "offered_pkts"],
    );
    let wl = workload(scale);
    let mut start = 0u64;
    for phase in wl.phases() {
        let end = start.saturating_add(phase.duration);
        t.push(vec![
            start.to_string(),
            if end == u64::MAX {
                "...".to_owned()
            } else {
                end.to_string()
            },
            phase.pattern.name().to_owned(),
            fnum(phase.process.offered_rate()),
        ]);
        if end == u64::MAX {
            break;
        }
        start = end;
    }
    t
}
