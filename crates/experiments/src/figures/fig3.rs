//! Figure 3: overall performance with uniform-random traffic.
//!
//! Four panels: delivered throughput and average latency vs offered load,
//! under deadlock recovery (a, b) and deadlock avoidance (c, d), comparing
//! `Base` (no control), `ALO` (local estimate) and `Tune` (the paper's
//! scheme). The shape to reproduce: Base and ALO collapse at saturation
//! (catastrophically under recovery); Tune stays near peak throughput with
//! bounded latency at every offered load.

use crate::runner::{JobError, SweepError};
use crate::table::fnum;
use crate::{steady_config, sweep_rates_for, try_run_point, Scale, SweepCtx, Table};
use stcc::Scheme;
use traffic::Pattern;
use wormsim::{DeadlockMode, NetConfig};

/// Runs the Figure 3 sweeps (all four panels in one table), fanned across
/// `ctx`'s pool.
///
/// # Errors
///
/// Returns the first failing sweep point.
pub fn generate(scale: Scale, ctx: &SweepCtx) -> Result<Table, SweepError> {
    let mut t = Table::new(
        "Figure 3 — overall performance, uniform random (base/alo/tune x recovery/avoidance)",
        &[
            "deadlock",
            "scheme",
            "offered_pkts",
            "tput_pkts",
            "tput_flits",
            "net_latency",
            "total_latency",
            "throttled",
        ],
    );
    let mut jobs = Vec::new();
    for (mode, mode_name) in [
        (DeadlockMode::PAPER_RECOVERY, "recovery"),
        (DeadlockMode::Avoidance, "avoidance"),
    ] {
        for scheme in [Scheme::Base, Scheme::Alo, Scheme::tuned_paper()] {
            for (i, &rate) in sweep_rates_for(scale).iter().enumerate() {
                jobs.push((mode, mode_name, scheme.clone(), rate, i));
            }
        }
    }
    let rows = ctx.try_run_rows(
        jobs,
        |(_, mode_name, scheme, rate, _)| format!("fig3 {mode_name} {} @ {rate}", scheme.label()),
        |(mode, mode_name, scheme, rate, i)| {
            let cfg = steady_config(
                NetConfig::paper(mode),
                scheme.clone(),
                Pattern::UniformRandom,
                rate,
                scale,
                0xF16_0003 + i as u64,
            );
            let r = try_run_point(cfg)?;
            Ok::<_, JobError>(vec![vec![
                mode_name.to_owned(),
                scheme.label(),
                fnum(rate),
                fnum(r.tput_packets),
                fnum(r.tput_flits),
                fnum(r.latency),
                fnum(r.latency_total),
                r.throttled.to_string(),
            ]])
        },
    )?;
    t.extend(rows);
    Ok(t)
}
