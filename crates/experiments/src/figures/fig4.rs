//! Figure 4: self-tuning operation over time.
//!
//! One run at a just-saturating uniform-random load, comparing
//! hill-climbing **alone** against hill climbing **plus local-maximum
//! avoidance** (§4.2). The shape to reproduce: the hill-climber's threshold
//! ratchets upward as the network creeps into saturation and throughput
//! decays; the full scheme takes sharp corrective dips in the threshold and
//! sustains throughput.
//!
//! Parameter substitution: the paper runs this on deadlock avoidance with a
//! 100-cycle regeneration interval — *just at their network's saturation
//! point*. Our simulator's saturation knee sits at twice that load and the
//! creep pathology lives in the recovery configuration (DESIGN.md §5b), so
//! the equivalent experiment here is a 50-cycle interval under deadlock
//! recovery.

use crate::runner::{JobError, SweepError};
use crate::table::fnum;
use crate::{try_run_series, NetPreset, Scale, SweepCtx, Table};
use stcc::{Scheme, SimConfig, TuneConfig};
use traffic::{Pattern, Process, Workload};
use wormsim::DeadlockMode;

/// Time-series sample spacing, in cycles (long scales; short scales shrink
/// it so every run still yields a dozen windows).
const SAMPLE: u64 = 4_000;

/// The [`SimConfig`] of one Figure 4 variant, exposed so the
/// checkpoint-determinism tests and the CI smoke gate can snapshot/restore
/// exactly the simulation a `fig4` run executes.
#[must_use]
pub fn sim_config(net: NetPreset, scale: Scale, avoid: bool) -> SimConfig {
    let tune = TuneConfig {
        sideband: net.sideband(),
        avoid_local_maxima: avoid,
        ..TuneConfig::paper()
    };
    SimConfig {
        net: net.net(DeadlockMode::PAPER_RECOVERY),
        workload: Workload::steady(Pattern::UniformRandom, Process::periodic(50)),
        scheme: Scheme::Tuned(tune),
        cycles: scale.cycles(),
        warmup: scale.warmup(),
        seed: 0xF16_0004,
    }
}

/// Runs the two Figure 4 traces (threshold and throughput vs time) on the
/// paper network.
///
/// # Errors
///
/// Returns the first failing trace.
pub fn generate(scale: Scale, ctx: &SweepCtx) -> Result<Table, SweepError> {
    generate_on(NetPreset::Paper, scale, ctx)
}

/// Runs the two Figure 4 traces on a chosen network preset.
///
/// # Errors
///
/// Returns the first failing trace.
pub fn generate_on(net: NetPreset, scale: Scale, ctx: &SweepCtx) -> Result<Table, SweepError> {
    let mut t = Table::new(
        "Figure 4 — self-tuning operation (threshold & throughput vs time, avoidance, interval 100)",
        &["variant", "t", "threshold", "tput_flits"],
    );
    let window = SAMPLE.min((scale.cycles() / 12).max(1));
    let variants = vec![
        (false, "hill-climbing-only"),
        (true, "hill-climbing+avoid-max"),
    ];
    let rows = ctx.try_run_rows(
        variants,
        |&(_, name)| format!("fig4 {name}"),
        |(avoid, name)| {
            let r = try_run_series(sim_config(net, scale, avoid), window)?;
            let thresholds: Vec<_> = r.threshold.points().to_vec();
            Ok::<_, JobError>(
                r.tput
                    .normalized(r.nodes)
                    .enumerate()
                    .map(|(i, (time, tput))| {
                        let thr = thresholds.get(i).map_or(f64::NAN, |&(_, v)| v);
                        vec![name.to_owned(), time.to_string(), fnum(thr), fnum(tput)]
                    })
                    .collect(),
            )
        },
    )?;
    t.extend(rows);
    Ok(t)
}
