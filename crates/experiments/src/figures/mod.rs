//! One module per reproduced figure/table of the paper, plus the ablation
//! experiments DESIGN.md commits to. Each `generate` function returns a
//! [`Table`](crate::Table) with the same rows/series the paper reports.

pub mod ablations;
pub mod controllers;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod resilience;
pub mod table1;
