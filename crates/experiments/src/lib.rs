//! `experiments` — the harness that regenerates every table and figure of
//! the paper (see DESIGN.md §5 for the experiment index).
//!
//! Each figure has a module under [`figures`] producing a [`Table`] of rows,
//! and a binary (`fig1` … `fig7`, `table1`, `ablation_*`) that prints it and
//! writes a CSV under `results/`. Binaries accept `--scale` (`paper`,
//! `reduced`, `smoke`, `tiny`) because the paper-scale runs (600 000 cycles
//! × many sweep points) take a while, `--net` (`paper`, `small`) to shrink
//! the network itself, and `--jobs N` (or `STCC_JOBS`) to fan the sweep's
//! independent points across the deterministic [`runner::Pool`] — the
//! output is bit-identical at every job count (see `tests/golden.rs`).
//!
//! Sweeps are crash-safe: every binary journals completed points
//! ([`journal`]), accepts `--resume` to skip them after a kill, writes its
//! CSV atomically, and guards each job against livelock and blown budgets
//! (see `EXPERIMENTS.md`, "Interrupting and resuming sweeps").

pub mod campaign;
pub mod cli;
pub mod figures;
pub mod journal;
mod run;
pub mod runner;
mod scale;
pub mod sigint;
pub mod sweep;
pub mod table;

pub use cli::Cli;
pub use run::{
    run_point, run_point_with_faults, run_series, steady_config, sweep_rates, sweep_rates_for,
    try_run_point, try_run_point_instrumented, try_run_point_with_faults, try_run_series,
    NetPreset, PointResult, SeriesResult,
};
pub use runner::{JobBudget, JobError, Pool, SweepError};
pub use scale::Scale;
pub use sweep::SweepCtx;
pub use table::Table;
