//! `experiments` — the harness that regenerates every table and figure of
//! the paper (see DESIGN.md §5 for the experiment index).
//!
//! Each figure has a module under [`figures`] producing a [`Table`] of rows,
//! and a binary (`fig1` … `fig7`, `table1`, `ablation_*`) that prints it and
//! writes a CSV under `results/`. Binaries accept a `--scale` argument
//! (`paper`, `reduced`, `smoke`) because the paper-scale runs (600 000
//! cycles × many sweep points) take a while on one core.

pub mod cli;
pub mod figures;
mod run;
mod scale;
pub mod table;

pub use cli::Cli;
pub use run::{
    run_point, run_point_with_faults, run_series, steady_config, sweep_rates, sweep_rates_for,
    PointResult, SeriesResult,
};
pub use scale::Scale;
pub use table::Table;
