//! One bench per reproduced table/figure, each running a miniature version
//! of the same experiment (8-ary 2-cube, short horizon). These regress the
//! end-to-end simulator cost behind every artifact; the full-size artifacts
//! are produced by the `experiments` binaries.

use bench::run_mini;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sideband::SidebandConfig;
use std::hint::black_box;
use stcc::{Scheme, SimConfig, Simulation};
use traffic::{Pattern, Process, Workload};
use wormsim::{DeadlockMode, NetConfig};

const CYCLES: u64 = 6_000;

fn bench_group(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper_figures");
    g.sample_size(10);

    // Figure 1: base saturation breakdown (below and beyond the cliff).
    g.bench_function("fig1_base_light_load", |b| {
        b.iter(|| run_mini(Scheme::Base, DeadlockMode::PAPER_RECOVERY, black_box(0.005), CYCLES));
    });
    g.bench_function("fig1_base_saturated", |b| {
        b.iter(|| run_mini(Scheme::Base, DeadlockMode::PAPER_RECOVERY, black_box(0.06), CYCLES));
    });

    // Figure 2: throughput-vs-occupancy point (same machinery, mid load).
    g.bench_function("fig2_tput_vs_buffers", |b| {
        b.iter(|| run_mini(Scheme::Base, DeadlockMode::PAPER_RECOVERY, black_box(0.02), CYCLES));
    });

    // Figure 3: the three schemes at overload, both deadlock modes.
    for (mode, name) in [
        (DeadlockMode::PAPER_RECOVERY, "recovery"),
        (DeadlockMode::Avoidance, "avoidance"),
    ] {
        g.bench_function(format!("fig3_base_{name}"), |b| {
            b.iter(|| run_mini(Scheme::Base, mode, black_box(0.06), CYCLES));
        });
        g.bench_function(format!("fig3_alo_{name}"), |b| {
            b.iter(|| run_mini(Scheme::Alo, mode, black_box(0.06), CYCLES));
        });
        g.bench_function(format!("fig3_tune_{name}"), |b| {
            b.iter(|| run_mini(Scheme::tuned_paper(), mode, black_box(0.06), CYCLES));
        });
    }

    // Figure 4: tuning trace (periodic load, avoidance).
    g.bench_function("fig4_tuning_trace", |b| {
        b.iter_batched(
            || {
                Simulation::new(SimConfig {
                    net: NetConfig::small(DeadlockMode::Avoidance),
                    workload: Workload::steady(Pattern::UniformRandom, Process::periodic(100)),
                    scheme: Scheme::tuned_paper(),
                    cycles: CYCLES,
                    warmup: CYCLES / 6,
                    seed: 4,
                })
                .expect("valid fig4 bench config")
            },
            |mut sim| {
                sim.run_to_end();
                black_box(sim.tuned().and_then(stcc::SelfTuned::threshold))
            },
            BatchSize::PerIteration,
        );
    });

    // Figure 5: static thresholds.
    g.bench_function("fig5_static_vs_tuned", |b| {
        b.iter(|| {
            run_mini(
                Scheme::Static {
                    threshold: 60,
                    sideband: SidebandConfig { radix: 8, ..SidebandConfig::paper() },
                },
                DeadlockMode::PAPER_RECOVERY,
                black_box(0.06),
                CYCLES,
            )
        });
    });

    // Figures 6/7: the bursty workload.
    g.bench_function("fig7_bursty", |b| {
        b.iter_batched(
            || {
                Simulation::new(SimConfig {
                    net: NetConfig::small(DeadlockMode::PAPER_RECOVERY),
                    workload: Workload::bursty(CYCLES / 6, 1_500, 15),
                    scheme: Scheme::tuned_paper(),
                    cycles: CYCLES,
                    warmup: CYCLES / 12,
                    seed: 7,
                })
                .expect("valid fig7 bench config")
            },
            |mut sim| {
                sim.run_to_end();
                black_box(sim.network().counters().delivered_flits)
            },
            BatchSize::PerIteration,
        );
    });

    g.finish();
}

criterion_group!(benches, bench_group);
criterion_main!(benches);
