//! One bench per reproduced table/figure, each running a miniature version
//! of the same experiment (8-ary 2-cube, short horizon). These regress the
//! end-to-end simulator cost behind every artifact; the full-size artifacts
//! are produced by the `experiments` binaries.

use bench::harness::{BenchConfig, Group};
use bench::run_mini;
use experiments::figures::fig2;
use experiments::runner::Pool;
use experiments::{NetPreset, Scale, SweepCtx};
use sideband::SidebandConfig;
use stcc::{Scheme, SimConfig, Simulation};
use std::hint::black_box;
use traffic::{Pattern, Process, Workload};
use wormsim::{DeadlockMode, NetConfig};

const CYCLES: u64 = 6_000;

/// The same sweep the runner parallelizes, timed at 1 worker and at the
/// host's available parallelism: on a multi-core machine the ratio is the
/// wall-clock speedup the `--jobs` knob buys; on a single-core host the
/// two land within noise of each other (the runner adds no real overhead).
fn parallel_sweep() {
    let mut g = Group::new(
        "parallel_sweep (fig2, tiny, small net)",
        BenchConfig {
            samples: 3,
            iters_per_sample: 1,
            warmup_iters: 1,
        },
    );
    let host_jobs = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let counts = if host_jobs > 1 {
        vec![1, host_jobs]
    } else {
        vec![1]
    };
    for jobs in counts {
        let ctx = SweepCtx::bare(Pool::new(jobs));
        g.bench(&format!("fig2_tiny_jobs_{jobs}"), || {
            black_box(
                fig2::generate_on(NetPreset::Small, Scale::Tiny, &ctx)
                    .expect("tiny fig2 sweep")
                    .to_csv()
                    .len(),
            )
        });
    }
}

fn main() {
    let mut g = Group::new(
        "paper_figures",
        BenchConfig {
            samples: 10,
            iters_per_sample: 1,
            warmup_iters: 1,
        },
    );

    // Figure 1: base saturation breakdown (below and beyond the cliff).
    g.bench("fig1_base_light_load", || {
        run_mini(
            Scheme::Base,
            DeadlockMode::PAPER_RECOVERY,
            black_box(0.005),
            CYCLES,
        )
    });
    g.bench("fig1_base_saturated", || {
        run_mini(
            Scheme::Base,
            DeadlockMode::PAPER_RECOVERY,
            black_box(0.06),
            CYCLES,
        )
    });

    // Figure 2: throughput-vs-occupancy point (same machinery, mid load).
    g.bench("fig2_tput_vs_buffers", || {
        run_mini(
            Scheme::Base,
            DeadlockMode::PAPER_RECOVERY,
            black_box(0.02),
            CYCLES,
        )
    });

    // Figure 3: the three schemes at overload, both deadlock modes.
    for (mode, name) in [
        (DeadlockMode::PAPER_RECOVERY, "recovery"),
        (DeadlockMode::Avoidance, "avoidance"),
    ] {
        g.bench(&format!("fig3_base_{name}"), || {
            run_mini(Scheme::Base, mode, black_box(0.06), CYCLES)
        });
        g.bench(&format!("fig3_alo_{name}"), || {
            run_mini(Scheme::Alo, mode, black_box(0.06), CYCLES)
        });
        g.bench(&format!("fig3_tune_{name}"), || {
            run_mini(Scheme::tuned_paper(), mode, black_box(0.06), CYCLES)
        });
    }

    // Figure 4: tuning trace (periodic load, avoidance).
    g.bench("fig4_tuning_trace", || {
        let mut sim = Simulation::new(SimConfig {
            net: NetConfig::small(DeadlockMode::Avoidance),
            workload: Workload::steady(Pattern::UniformRandom, Process::periodic(100)),
            scheme: Scheme::tuned_paper(),
            cycles: CYCLES,
            warmup: CYCLES / 6,
            seed: 4,
        })
        .expect("valid fig4 bench config");
        sim.run_to_end();
        black_box(sim.tuned().and_then(stcc::SelfTuned::threshold))
    });

    // Figure 5: static thresholds.
    g.bench("fig5_static_vs_tuned", || {
        run_mini(
            Scheme::Static {
                threshold: 60,
                sideband: SidebandConfig {
                    radix: 8,
                    ..SidebandConfig::paper()
                },
            },
            DeadlockMode::PAPER_RECOVERY,
            black_box(0.06),
            CYCLES,
        )
    });

    // Figures 6/7: the bursty workload.
    g.bench("fig7_bursty", || {
        let mut sim = Simulation::new(SimConfig {
            net: NetConfig::small(DeadlockMode::PAPER_RECOVERY),
            workload: Workload::bursty(CYCLES / 6, 1_500, 15),
            scheme: Scheme::tuned_paper(),
            cycles: CYCLES,
            warmup: CYCLES / 12,
            seed: 7,
        })
        .expect("valid fig7 bench config");
        sim.run_to_end();
        black_box(sim.network().counters().delivered_flits)
    });

    parallel_sweep();
}
