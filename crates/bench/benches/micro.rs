//! Component microbenches: per-cycle simulator cost, side-band estimation,
//! controller arithmetic, topology and traffic primitives.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use kncube::Torus;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sideband::{Sideband, SidebandConfig};
use std::hint::black_box;
use traffic::Pattern;
use wormsim::{DeadlockMode, NetConfig, Network, NoControl};

fn network_cycles(c: &mut Criterion) {
    let mut g = c.benchmark_group("network_cycle");
    let cycles_per_iter = 1_000u64;
    g.throughput(Throughput::Elements(cycles_per_iter));

    // Idle 16-ary 2-cube: the floor cost of one cycle over 256 routers.
    g.bench_function("idle_256_nodes", |b| {
        let mut net = Network::new(NetConfig::paper(DeadlockMode::PAPER_RECOVERY)).unwrap();
        let mut src = |_: u64, _: usize| None;
        b.iter(|| {
            net.run(cycles_per_iter, &mut src, &mut NoControl);
            black_box(net.now())
        });
    });

    // Saturated: worst-case per-cycle cost (pre-warmed network).
    g.bench_function("saturated_256_nodes", |b| {
        let mut net = Network::new(NetConfig::paper(DeadlockMode::PAPER_RECOVERY)).unwrap();
        let nodes = net.torus().node_count();
        let mut x = 0usize;
        let mut src = move |_: u64, node: usize| {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(node + 1);
            Some((x >> 33) % nodes)
        };
        net.run(5_000, &mut src, &mut NoControl); // warm into saturation
        b.iter(|| {
            net.run(cycles_per_iter, &mut src, &mut NoControl);
            black_box(net.counters().delivered_flits)
        });
    });
    g.finish();
}

fn components(c: &mut Criterion) {
    let mut g = c.benchmark_group("components");

    g.bench_function("sideband_tick", |b| {
        let mut sb = Sideband::new(SidebandConfig::paper());
        let mut now = 0u64;
        b.iter(|| {
            sb.on_cycle(now, (now % 3_000) as u32, now * 3);
            now += 1;
            black_box(sb.estimate(now))
        });
    });

    let torus = Torus::new(16, 2).unwrap();
    g.bench_function("torus_productive_hops", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 97) % 256;
            black_box(torus.productive_hops(i, 255 - i).len())
        });
    });

    g.bench_function("pattern_destinations", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % 256;
            black_box(Pattern::BitReversal.destination(i, 256, &mut rng))
                + black_box(Pattern::UniformRandom.destination(i, 256, &mut rng))
        });
    });

    g.finish();
}

criterion_group!(benches, network_cycles, components);
criterion_main!(benches);
