//! Component microbenches: per-cycle simulator cost, side-band estimation,
//! controller arithmetic, topology and traffic primitives.

use bench::harness::{BenchConfig, Group};
use kncube::Torus;
use sideband::{Sideband, SidebandConfig};
use std::hint::black_box;
use traffic::{Pattern, SimRng};
use wormsim::{DeadlockMode, NetConfig, Network, NoControl};

fn network_cycles() {
    let mut g = Group::new(
        "network_cycle (1000 cycles/iter)",
        BenchConfig {
            samples: 10,
            iters_per_sample: 1,
            warmup_iters: 1,
        },
    );
    let cycles_per_iter = 1_000u64;

    // Idle 16-ary 2-cube: the floor cost of one cycle over 256 routers.
    {
        let mut net = Network::new(NetConfig::paper(DeadlockMode::PAPER_RECOVERY)).unwrap();
        let mut src = |_: u64, _: usize| None;
        g.bench_units("idle_256_nodes", cycles_per_iter as f64, || {
            net.run(cycles_per_iter, &mut src, &mut NoControl);
            black_box(net.now())
        });
    }

    // Saturated: worst-case per-cycle cost (pre-warmed network).
    {
        let mut net = Network::new(NetConfig::paper(DeadlockMode::PAPER_RECOVERY)).unwrap();
        let nodes = net.torus().node_count();
        let mut x = 0usize;
        let mut src = move |_: u64, node: usize| {
            x = x
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(node + 1);
            Some((x >> 33) % nodes)
        };
        net.run(5_000, &mut src, &mut NoControl); // warm into saturation
        g.bench_units("saturated_256_nodes", cycles_per_iter as f64, || {
            net.run(cycles_per_iter, &mut src, &mut NoControl);
            black_box(net.counters().delivered_flits)
        });
    }
}

fn components() {
    let mut g = Group::new(
        "components",
        BenchConfig {
            samples: 10,
            iters_per_sample: 10_000,
            warmup_iters: 100,
        },
    );

    {
        let mut sb = Sideband::new(SidebandConfig::paper());
        let mut now = 0u64;
        g.bench("sideband_tick", || {
            sb.on_cycle(now, (now % 3_000) as u32, now * 3);
            now += 1;
            black_box(sb.estimate(now))
        });
    }

    let torus = Torus::new(16, 2).unwrap();
    {
        let mut i = 0usize;
        g.bench("torus_productive_hops", || {
            i = (i + 97) % 256;
            black_box(torus.productive_hops(i, 255 - i).len())
        });
    }

    {
        let mut rng = SimRng::seed_from_u64(1);
        let mut i = 0usize;
        g.bench("pattern_destinations", || {
            i = (i + 1) % 256;
            black_box(Pattern::BitReversal.destination(i, 256, &mut rng))
                + black_box(Pattern::UniformRandom.destination(i, 256, &mut rng))
        });
    }
}

fn checkpointing() {
    use stcc::{Scheme, SimConfig, Simulation, TuneConfig};
    use traffic::{Pattern, Process, Workload};

    let mut g = Group::new(
        "checkpointing (256 nodes, tuned, load 0.014)",
        BenchConfig {
            samples: 5,
            iters_per_sample: 1,
            warmup_iters: 1,
        },
    );
    let cfg = SimConfig {
        net: NetConfig::paper(DeadlockMode::PAPER_RECOVERY),
        workload: Workload::steady(Pattern::UniformRandom, Process::bernoulli(0.014)),
        scheme: Scheme::Tuned(TuneConfig::paper()),
        cycles: 1 << 40,
        warmup: 1_000,
        seed: 0xBE7C4,
    };
    let mut sim = Simulation::new(cfg.clone()).unwrap();
    for _ in 0..2_000 {
        sim.step();
    }

    // Snapshot serialize/restore cost in isolation.
    g.bench("ckpt_serialize", || black_box(sim.checkpoint().len()));
    let snap = sim.checkpoint();
    g.bench("ckpt_restore", || {
        let restored = Simulation::restore(cfg.clone(), None, &snap).unwrap();
        black_box(restored.now())
    });

    // Simulated-cycle throughput with and without one checkpoint per
    // 10k-cycle cadence window: the difference between the two thrpt
    // columns is the overhead `STCC_CKPT_EVERY=10000` costs a sweep.
    const CADENCE: u64 = 10_000;
    g.bench_units("run_10k_cycles_plain", CADENCE as f64, || {
        for _ in 0..CADENCE {
            sim.step();
        }
        black_box(sim.now())
    });
    g.bench_units("run_10k_cycles_w_ckpt", CADENCE as f64, || {
        for _ in 0..CADENCE {
            sim.step();
        }
        black_box(sim.checkpoint().len())
    });
}

fn main() {
    network_cycles();
    components();
    checkpointing();
}
