//! A minimal wall-clock benchmarking harness (hermetic replacement for the
//! previous Criterion dependency, which cannot be fetched in the offline
//! build environment).
//!
//! Methodology: warm up, then time `samples` batches of `iters_per_sample`
//! iterations each and report the median, minimum and maximum per-iteration
//! time. The median over batches is robust to scheduler noise; this is the
//! same headline number Criterion prints, without its regression machinery.

use std::hint::black_box;
use std::time::Instant;

/// Per-bench measurement knobs.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Timed batches (median taken across them).
    pub samples: usize,
    /// Iterations per batch (amortizes timer overhead).
    pub iters_per_sample: u64,
    /// Untimed warm-up iterations.
    pub warmup_iters: u64,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            samples: 10,
            iters_per_sample: 1,
            warmup_iters: 1,
        }
    }
}

/// One bench's result, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Bench name as printed.
    pub name: String,
    /// Median per-iteration time across batches.
    pub median_ns: f64,
    /// Fastest batch.
    pub min_ns: f64,
    /// Slowest batch.
    pub max_ns: f64,
    /// Work units (e.g. simulated cycles) per iteration, when the bench
    /// declared them via [`Group::bench_units`]; drives the throughput
    /// column.
    pub units_per_iter: Option<f64>,
}

impl BenchResult {
    /// Median throughput in units per second (e.g. simulated cycles/sec),
    /// if the bench declared its units per iteration.
    #[must_use]
    pub fn units_per_second(&self) -> Option<f64> {
        self.units_per_iter.map(|u| u / (self.median_ns * 1e-9))
    }
}

/// A named group of benches, printed as a table as results come in.
pub struct Group {
    name: &'static str,
    cfg: BenchConfig,
    results: Vec<BenchResult>,
}

impl Group {
    /// Starts a group with the given measurement configuration.
    #[must_use]
    pub fn new(name: &'static str, cfg: BenchConfig) -> Self {
        println!("\n== {name} ==");
        println!(
            "{:<28} {:>12} {:>12} {:>12} {:>14}",
            "bench", "median", "min", "max", "thrpt"
        );
        Group {
            name,
            cfg,
            results: Vec::new(),
        }
    }

    /// Times `f` (whose return value is black-boxed) and records the result.
    pub fn bench<T>(&mut self, name: &str, f: impl FnMut() -> T) {
        self.run(name, None, f);
    }

    /// Like [`Group::bench`], but declares how many work units (e.g.
    /// simulated cycles) one iteration performs, so the result also
    /// reports a units-per-second throughput.
    pub fn bench_units<T>(&mut self, name: &str, units_per_iter: f64, f: impl FnMut() -> T) {
        self.run(name, Some(units_per_iter), f);
    }

    fn run<T>(&mut self, name: &str, units_per_iter: Option<f64>, mut f: impl FnMut() -> T) {
        for _ in 0..self.cfg.warmup_iters {
            black_box(f());
        }
        let mut per_iter = Vec::with_capacity(self.cfg.samples);
        for _ in 0..self.cfg.samples {
            let start = Instant::now();
            for _ in 0..self.cfg.iters_per_sample {
                black_box(f());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            per_iter.push(elapsed / self.cfg.iters_per_sample as f64);
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let result = BenchResult {
            name: name.to_owned(),
            median_ns: per_iter[per_iter.len() / 2],
            min_ns: per_iter[0],
            max_ns: per_iter[per_iter.len() - 1],
            units_per_iter,
        };
        println!(
            "{:<28} {:>12} {:>12} {:>12} {:>14}",
            result.name,
            fmt_ns(result.median_ns),
            fmt_ns(result.min_ns),
            fmt_ns(result.max_ns),
            result.units_per_second().map_or(String::new(), fmt_rate),
        );
        self.results.push(result);
    }

    /// The group's name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Results recorded so far.
    #[must_use]
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

fn fmt_rate(per_sec: f64) -> String {
    if per_sec >= 1e9 {
        format!("{:.2} G/s", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2} M/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2} K/s", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} /s")
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_plausible_timings() {
        let mut g = Group::new(
            "self-test",
            BenchConfig {
                samples: 3,
                iters_per_sample: 10,
                warmup_iters: 1,
            },
        );
        let mut acc = 0u64;
        g.bench("spin", || {
            for i in 0..1000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        let r = &g.results()[0];
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
        assert!(r.median_ns > 0.0);
        assert_eq!(r.units_per_second(), None);
    }

    #[test]
    fn declared_units_yield_a_throughput() {
        let mut g = Group::new(
            "self-test-units",
            BenchConfig {
                samples: 3,
                iters_per_sample: 5,
                warmup_iters: 1,
            },
        );
        g.bench_units("noop_1000_units", 1000.0, || black_box(0u64));
        let r = &g.results()[0];
        let rate = r.units_per_second().expect("units were declared");
        assert!((rate - 1000.0 / (r.median_ns * 1e-9)).abs() < 1e-6);
        assert!(rate > 0.0);
    }

    #[test]
    fn formatting_picks_sane_units() {
        assert_eq!(fmt_ns(500.0), "500 ns");
        assert_eq!(fmt_ns(1_500.0), "1.500 µs");
        assert_eq!(fmt_ns(2_000_000.0), "2.000 ms");
        assert_eq!(fmt_ns(3e9), "3.000 s");
        assert_eq!(fmt_rate(950.0), "950.0 /s");
        assert_eq!(fmt_rate(650_000.0), "650.00 K/s");
        assert_eq!(fmt_rate(2.5e6), "2.50 M/s");
        assert_eq!(fmt_rate(3e9), "3.00 G/s");
    }
}
