//! A minimal wall-clock benchmarking harness (hermetic replacement for the
//! previous Criterion dependency, which cannot be fetched in the offline
//! build environment).
//!
//! Methodology: warm up, then time `samples` batches of `iters_per_sample`
//! iterations each and report the median, minimum and maximum per-iteration
//! time. The median over batches is robust to scheduler noise; this is the
//! same headline number Criterion prints, without its regression machinery.

use std::hint::black_box;
use std::time::Instant;

/// Per-bench measurement knobs.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Timed batches (median taken across them).
    pub samples: usize,
    /// Iterations per batch (amortizes timer overhead).
    pub iters_per_sample: u64,
    /// Untimed warm-up iterations.
    pub warmup_iters: u64,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            samples: 10,
            iters_per_sample: 1,
            warmup_iters: 1,
        }
    }
}

/// One bench's result, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Bench name as printed.
    pub name: String,
    /// Median per-iteration time across batches.
    pub median_ns: f64,
    /// Fastest batch.
    pub min_ns: f64,
    /// Slowest batch.
    pub max_ns: f64,
}

/// A named group of benches, printed as a table as results come in.
pub struct Group {
    name: &'static str,
    cfg: BenchConfig,
    results: Vec<BenchResult>,
}

impl Group {
    /// Starts a group with the given measurement configuration.
    #[must_use]
    pub fn new(name: &'static str, cfg: BenchConfig) -> Self {
        println!("\n== {name} ==");
        println!(
            "{:<28} {:>12} {:>12} {:>12}",
            "bench", "median", "min", "max"
        );
        Group {
            name,
            cfg,
            results: Vec::new(),
        }
    }

    /// Times `f` (whose return value is black-boxed) and records the result.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) {
        for _ in 0..self.cfg.warmup_iters {
            black_box(f());
        }
        let mut per_iter = Vec::with_capacity(self.cfg.samples);
        for _ in 0..self.cfg.samples {
            let start = Instant::now();
            for _ in 0..self.cfg.iters_per_sample {
                black_box(f());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            per_iter.push(elapsed / self.cfg.iters_per_sample as f64);
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let result = BenchResult {
            name: name.to_owned(),
            median_ns: per_iter[per_iter.len() / 2],
            min_ns: per_iter[0],
            max_ns: per_iter[per_iter.len() - 1],
        };
        println!(
            "{:<28} {:>12} {:>12} {:>12}",
            result.name,
            fmt_ns(result.median_ns),
            fmt_ns(result.min_ns),
            fmt_ns(result.max_ns)
        );
        self.results.push(result);
    }

    /// The group's name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Results recorded so far.
    #[must_use]
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_plausible_timings() {
        let mut g = Group::new(
            "self-test",
            BenchConfig {
                samples: 3,
                iters_per_sample: 10,
                warmup_iters: 1,
            },
        );
        let mut acc = 0u64;
        g.bench("spin", || {
            for i in 0..1000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        let r = &g.results()[0];
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
        assert!(r.median_ns > 0.0);
    }

    #[test]
    fn formatting_picks_sane_units() {
        assert_eq!(fmt_ns(500.0), "500 ns");
        assert_eq!(fmt_ns(1_500.0), "1.500 µs");
        assert_eq!(fmt_ns(2_000_000.0), "2.000 ms");
        assert_eq!(fmt_ns(3e9), "3.000 s");
    }
}
