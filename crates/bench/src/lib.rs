//! Shared helpers for the benches.
//!
//! Each paper table/figure has a bench in `benches/paper_figures.rs` that
//! runs a miniature (8-ary 2-cube, few-thousand-cycle) version of the same
//! experiment — enough to regress the simulator's end-to-end cost per
//! reproduced artifact. Component microbenches live in `benches/micro.rs`.
//!
//! The benches use the in-tree [`harness`] (wall-clock median over repeated
//! runs) instead of an external benchmarking crate so the workspace builds
//! with no network access; see README "Hermetic build".

pub mod harness;

use stcc::{Scheme, SimConfig, Simulation};
use traffic::{Pattern, Process, Workload};
use wormsim::{DeadlockMode, NetConfig};

/// A miniature steady-load simulation mirroring one sweep point of the
/// figures: 8-ary 2-cube, `cycles` total with 1/6 warm-up.
///
/// # Panics
///
/// Panics on invalid parameters (benches pass fixed known-good ones).
#[must_use]
pub fn mini_sim(scheme: Scheme, deadlock: DeadlockMode, rate: f64, cycles: u64) -> Simulation {
    let cfg = SimConfig {
        net: NetConfig::small(deadlock),
        workload: Workload::steady(Pattern::UniformRandom, Process::bernoulli(rate)),
        scheme,
        cycles,
        warmup: cycles / 6,
        seed: 0xBE7C,
    };
    Simulation::new(cfg).expect("valid mini simulation")
}

/// Runs a miniature simulation to completion and returns delivered flits
/// (used as the benchmark's observable output).
#[must_use]
pub fn run_mini(scheme: Scheme, deadlock: DeadlockMode, rate: f64, cycles: u64) -> u64 {
    let mut sim = mini_sim(scheme, deadlock, rate, cycles);
    sim.run_to_end();
    sim.network().counters().delivered_flits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mini_sim_delivers_traffic() {
        let flits = run_mini(Scheme::Base, DeadlockMode::Avoidance, 0.005, 3_000);
        assert!(flits > 0);
    }
}
