//! Machine-readable netsim performance baselines.
//!
//! Measures the simulator's headline numbers — idle and saturated
//! cycles/s, and checkpoint serialize/restore time — with the same
//! methodology as the `micro` bench, then either writes them as a flat
//! JSON baseline or gates the current build against a committed one:
//!
//! ```text
//! bench_netsim --out BENCH_netsim.json                       # paper preset
//! bench_netsim --gate BENCH_netsim.json                      # fail on >15% regression
//! bench_netsim --preset tiny --tolerance 0.5 --gate BENCH_netsim_tiny.json
//! ```
//!
//! The `paper` preset runs the 16-ary 2-cube (256 nodes); `tiny` runs the
//! 8-ary 2-cube (64 nodes) and is cheap enough that `scripts/ci.sh` gates
//! it unconditionally (with a generous tolerance — it only has to catch
//! order-of-magnitude cliffs on a shared 1-core host). The full paper
//! gate stays opt-in via `STCC_BENCH_GATE=1`. `big` is the 64-ary 3-cube
//! (262,144 nodes) — the first preset past `TABLE_NODE_LIMIT`, stepping
//! on the dynamic routing fallback; it exists for `--out` records, not
//! for gating.
//!
//! v2 baselines added the per-stage work-share breakdown of the saturated
//! run (inject/route/starvation/switch/drain, in percent); v3 added the
//! shard-scaling rows (`saturated_cycles_per_sec@shards=1/2/4` — the same
//! saturated workload stepped across 1/2/4 threads). Those are
//! informational: `--gate` prints the drift but never fails on them, and
//! accepts v1/v2 baselines that lack them entirely. v4 adds the
//! decide/apply/barrier time split of a sharded cycle
//! (`phase_*_ns_per_cycle@shards=2`, informational) and one new *gated*
//! metric: `shard_overhead_ratio`, the shards=2 / shards=1 saturated
//! throughput ratio, checked against an **absolute** floor of 0.9 rather
//! than against the baseline — the persistent worker pool must keep a
//! second shard essentially free even on a single-core host. The JSON is
//! hand-rolled and hand-parsed — one metric per line, no dependencies —
//! keeping the build hermetic.

use bench::harness::{BenchConfig, Group};
use std::hint::black_box;
use std::process::ExitCode;
use wormsim::{DeadlockMode, NetConfig, Network, NoControl};

/// Schema tag written into new baseline files. v4 adds the gated
/// `shard_overhead_ratio` (absolute floor, see [`SHARD_OVERHEAD_FLOOR`])
/// and the informational `phase_*_ns_per_cycle@shards=2` time split.
const SCHEMA_V4: &str = "stcc-bench-netsim-v4";

/// Previous schema, still accepted by `--gate` (no shard-overhead ratio
/// or phase split; the ratio still gates on its absolute floor).
const SCHEMA_V3: &str = "stcc-bench-netsim-v3";

/// Older schema, still accepted by `--gate` (no shard rows).
const SCHEMA_V2: &str = "stcc-bench-netsim-v2";

/// Oldest schema, still accepted by `--gate` (no stage shares either).
const SCHEMA_V1: &str = "stcc-bench-netsim-v1";

/// Largest tolerated regression per metric (fraction; `--tolerance`
/// overrides).
const DEFAULT_TOLERANCE: f64 = 0.15;

/// Absolute floor for `shard_overhead_ratio`: stepping the saturated
/// workload at two shards must stay within 10% of the single-shard rate
/// even when both shards share one core. Unlike every other gated metric
/// this is not relative to the baseline — a fleet-wide slowdown that
/// preserves the ratio passes, a pool regression that taxes only the
/// sharded path fails no matter what the baseline recorded.
const SHARD_OVERHEAD_FLOOR: f64 = 0.9;

/// Which network the baseline measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Preset {
    /// The paper's 16-ary 2-cube (256 nodes).
    Paper,
    /// An 8-ary 2-cube (64 nodes) — fast enough for an always-on CI gate.
    Tiny,
    /// A 64-ary 3-cube (262,144 nodes): two orders of magnitude past
    /// `TABLE_NODE_LIMIT`, so every routing decision takes the dynamic
    /// fallback. One VC and short packets keep the arenas in memory;
    /// measurements use fewer, shorter samples and skip the checkpoint
    /// metrics.
    Big,
}

impl Preset {
    fn parse(s: &str) -> Option<Preset> {
        match s {
            "paper" => Some(Preset::Paper),
            "tiny" => Some(Preset::Tiny),
            "big" => Some(Preset::Big),
            _ => None,
        }
    }

    fn label(self) -> &'static str {
        match self {
            Preset::Paper => "paper",
            Preset::Tiny => "tiny",
            Preset::Big => "big",
        }
    }

    fn net(self, deadlock: DeadlockMode) -> NetConfig {
        match self {
            Preset::Paper => NetConfig::paper(deadlock),
            Preset::Tiny => NetConfig::small(deadlock),
            Preset::Big => NetConfig {
                radix: 64,
                dimensions: 3,
                vcs: 1,
                buf_depth: 4,
                packet_len: 4,
                ..NetConfig::paper(deadlock)
            },
        }
    }

    /// Side-band radix matching the torus (the gather tree must cover it).
    fn sideband_radix(self) -> usize {
        match self {
            Preset::Paper => 16,
            Preset::Tiny => 8,
            Preset::Big => 64,
        }
    }
}

/// One measured metric: name, value, and whether bigger is better
/// (throughputs) or worse (latencies). Informational metrics (the stage
/// shares, the phase split) are written to baselines but never gated. A
/// metric with a `floor` gates against that absolute value instead of the
/// baseline — and therefore gates even when the baseline predates it.
struct Metric {
    name: &'static str,
    value: f64,
    higher_is_better: bool,
    informational: bool,
    floor: Option<f64>,
}

fn measure(preset: Preset) -> Vec<Metric> {
    // The big preset has three orders of magnitude more nodes than tiny:
    // fewer, shorter samples keep a full measurement in the minutes while
    // still stepping hundreds of saturated cycles.
    let (samples, cycles_per_iter, warm_cycles) = match preset {
        Preset::Big => (3, 200u64, 300u64),
        _ => (10, 1_000, 5_000),
    };
    let mut g = Group::new(
        "netsim baseline",
        BenchConfig {
            samples,
            iters_per_sample: 1,
            warmup_iters: 1,
        },
    );

    // Idle torus: the floor cost of one cycle with no live flits.
    {
        let mut net = Network::new(preset.net(DeadlockMode::PAPER_RECOVERY)).unwrap();
        let mut src = |_: u64, _: usize| None;
        g.bench_units("idle", cycles_per_iter as f64, || {
            net.run(cycles_per_iter, &mut src, &mut NoControl);
            black_box(net.now())
        });
    }

    // Saturated: worst-case per-cycle cost (pre-warmed network). Also the
    // run whose stage-visit counters become the v2 share breakdown, and —
    // re-partitioned in place — the v3 shard-scaling rows. The unsharded
    // measurement doubles as the `@shards=1` row; results are bit-identical
    // at every shard count, so the rows differ only in wall-clock.
    let (stages, phase_split) = {
        let mut net = Network::new(preset.net(DeadlockMode::PAPER_RECOVERY)).unwrap();
        let nodes = net.torus().node_count();
        let mut x = 0usize;
        let mut src = move |_: u64, node: usize| {
            x = x
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(node + 1);
            Some((x >> 33) % nodes)
        };
        net.run(warm_cycles, &mut src, &mut NoControl); // warm into saturation
        g.bench_units("saturated", cycles_per_iter as f64, || {
            net.run(cycles_per_iter, &mut src, &mut NoControl);
            black_box(net.counters().delivered_flits)
        });
        for (shards, label) in [(2, "saturated@shards=2"), (4, "saturated@shards=4")] {
            net.set_shards(shards);
            g.bench_units(label, cycles_per_iter as f64, || {
                net.run(cycles_per_iter, &mut src, &mut NoControl);
                black_box(net.counters().delivered_flits)
            });
        }
        // v4 phase split: where a two-shard saturated cycle spends its
        // time — parallel decide, parallel apply + sequential boundary
        // tail, or waiting on the epoch barrier. Timed outside the
        // benchmark samples above so the instrumentation (two `Instant`
        // reads per phase) never pollutes the throughput rows.
        net.set_shards(2);
        net.set_phase_stats(true);
        let split_cycles = cycles_per_iter * 2;
        net.run(split_cycles, &mut src, &mut NoControl);
        let ps = net
            .phase_stats()
            .expect("phase stats were enabled for the split run");
        net.set_phase_stats(false);
        let per_cycle = |ns: u64| ns as f64 / split_cycles as f64;
        (
            net.counters().stage_cycles(),
            [
                per_cycle(ps.decide_ns),
                per_cycle(ps.apply_ns),
                per_cycle(ps.barrier_ns),
            ],
        )
    };

    // Checkpoint codec cost on a warmed tuned simulation (skipped on the
    // big preset: a quarter-million-node tuned simulation is not what the
    // checkpoint codec numbers are for).
    if preset != Preset::Big {
        use sideband::SidebandConfig;
        use stcc::{Scheme, SimConfig, Simulation, TuneConfig};
        use traffic::{Pattern, Process, Workload};
        let cfg = SimConfig {
            net: preset.net(DeadlockMode::PAPER_RECOVERY),
            workload: Workload::steady(Pattern::UniformRandom, Process::bernoulli(0.014)),
            scheme: Scheme::Tuned(TuneConfig {
                sideband: SidebandConfig {
                    radix: preset.sideband_radix(),
                    ..SidebandConfig::paper()
                },
                ..TuneConfig::paper()
            }),
            cycles: 1 << 40,
            warmup: 1_000,
            seed: 0xBE7C4,
        };
        let mut sim = Simulation::new(cfg.clone()).unwrap();
        for _ in 0..2_000 {
            sim.step();
        }
        g.bench("ckpt_serialize", || black_box(sim.checkpoint().len()));
        let snap = sim.checkpoint();
        g.bench("ckpt_restore", || {
            let restored = Simulation::restore(cfg.clone(), None, &snap).unwrap();
            black_box(restored.now())
        });
    }

    let r = g.results();
    let by_name = |name: &str| {
        r.iter()
            .find(|b| b.name == name)
            .unwrap_or_else(|| panic!("no bench named {name}"))
    };
    let total = stages.total().max(1) as f64;
    let share = |v: u64| 100.0 * (v as f64) / total;
    let saturated = by_name("saturated").units_per_second().unwrap();
    let saturated_s2 = by_name("saturated@shards=2").units_per_second().unwrap();
    let mut metrics = vec![
        Metric {
            name: "idle_cycles_per_sec",
            value: by_name("idle").units_per_second().unwrap(),
            higher_is_better: true,
            informational: false,
            floor: None,
        },
        Metric {
            name: "saturated_cycles_per_sec",
            value: saturated,
            higher_is_better: true,
            informational: false,
            floor: None,
        },
    ];
    if preset != Preset::Big {
        metrics.push(Metric {
            name: "ckpt_serialize_ns",
            value: by_name("ckpt_serialize").median_ns,
            higher_is_better: false,
            informational: false,
            floor: None,
        });
        metrics.push(Metric {
            name: "ckpt_restore_ns",
            value: by_name("ckpt_restore").median_ns,
            higher_is_better: false,
            informational: false,
            floor: None,
        });
    }
    metrics.push(Metric {
        name: "shard_overhead_ratio",
        value: saturated_s2 / saturated,
        higher_is_better: true,
        informational: false,
        floor: Some(SHARD_OVERHEAD_FLOOR),
    });
    metrics.extend([
        Metric {
            name: "saturated_cycles_per_sec@shards=1",
            value: saturated,
            higher_is_better: true,
            informational: true,
            floor: None,
        },
        Metric {
            name: "saturated_cycles_per_sec@shards=2",
            value: saturated_s2,
            higher_is_better: true,
            informational: true,
            floor: None,
        },
        Metric {
            name: "saturated_cycles_per_sec@shards=4",
            value: by_name("saturated@shards=4").units_per_second().unwrap(),
            higher_is_better: true,
            informational: true,
            floor: None,
        },
        Metric {
            name: "stage_share_inject_pct",
            value: share(stages.inject),
            higher_is_better: false,
            informational: true,
            floor: None,
        },
        Metric {
            name: "stage_share_route_pct",
            value: share(stages.route),
            higher_is_better: false,
            informational: true,
            floor: None,
        },
        Metric {
            name: "stage_share_starvation_pct",
            value: share(stages.starvation),
            higher_is_better: false,
            informational: true,
            floor: None,
        },
        Metric {
            name: "stage_share_switch_pct",
            value: share(stages.switch),
            higher_is_better: false,
            informational: true,
            floor: None,
        },
        Metric {
            name: "stage_share_drain_pct",
            value: share(stages.drain),
            higher_is_better: false,
            informational: true,
            floor: None,
        },
        Metric {
            name: "phase_decide_ns_per_cycle@shards=2",
            value: phase_split[0],
            higher_is_better: false,
            informational: true,
            floor: None,
        },
        Metric {
            name: "phase_apply_ns_per_cycle@shards=2",
            value: phase_split[1],
            higher_is_better: false,
            informational: true,
            floor: None,
        },
        Metric {
            name: "phase_barrier_ns_per_cycle@shards=2",
            value: phase_split[2],
            higher_is_better: false,
            informational: true,
            floor: None,
        },
    ]);
    metrics
}

/// Renders the baseline as flat JSON, one metric per line.
fn render_json(preset: Preset, metrics: &[Metric]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"schema\": \"{SCHEMA_V4}\",\n"));
    out.push_str(&format!("  \"preset\": \"{}\",\n", preset.label()));
    for (i, m) in metrics.iter().enumerate() {
        let comma = if i + 1 == metrics.len() { "" } else { "," };
        // Three decimals: enough for the ratio metrics that live near 1.0
        // without turning the throughput rows into noise.
        out.push_str(&format!("  \"{}\": {:.3}{comma}\n", m.name, m.value));
    }
    out.push_str("}\n");
    out
}

/// Extracts `"key": <number>` from the flat baseline format. Returns `None`
/// when the key is absent or its value does not parse.
fn parse_metric(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts `"key": "<string>"` from the flat baseline format.
fn parse_string<'j>(json: &'j str, key: &str) -> Option<&'j str> {
    let needle = format!("\"{key}\": \"");
    let at = json.find(&needle)? + needle.len();
    let rest = &json[at..];
    Some(&rest[..rest.find('"')?])
}

/// Compares a fresh measurement against a baseline value; returns an error
/// line when it regressed beyond `tolerance`. A metric with an absolute
/// floor ignores the baseline (shown for drift context only) and fails
/// exactly when the measured value falls below the floor.
fn check(m: &Metric, baseline: f64, tolerance: f64) -> Result<String, String> {
    let ratio = m.value / baseline;
    let line = format!(
        "{:<36} baseline {:>14.3}  now {:>14.3}  ({:+.1}%)",
        m.name,
        baseline,
        m.value,
        (ratio - 1.0) * 100.0
    );
    if let Some(floor) = m.floor {
        return if m.value < floor {
            Err(format!("{line}  REGRESSED: below absolute floor {floor}"))
        } else {
            Ok(line)
        };
    }
    let (regressed, direction) = if m.higher_is_better {
        (ratio < 1.0 - tolerance, "slower")
    } else {
        (ratio > 1.0 + tolerance, "costlier")
    };
    if regressed {
        Err(format!(
            "{line}  REGRESSED: >{:.0}% {direction}",
            tolerance * 100.0
        ))
    } else {
        Ok(line)
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: bench_netsim [--preset paper|tiny|big] [--tolerance FRAC] \
         (--out <file.json> | --gate <baseline.json>)"
    );
    ExitCode::FAILURE
}

/// Parsed command line: mode (`--out`/`--gate`), path, preset, tolerance.
struct Cli {
    mode: &'static str,
    path: String,
    preset: Preset,
    tolerance: f64,
}

fn parse_cli(args: &[String]) -> Option<Cli> {
    let mut mode = None;
    let mut path = None;
    let mut preset = Preset::Paper;
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" | "--gate" => {
                mode = Some(if arg == "--out" { "--out" } else { "--gate" });
                path = Some(it.next()?.clone());
            }
            "--preset" => preset = Preset::parse(it.next()?)?,
            "--tolerance" => {
                tolerance = it.next()?.parse().ok()?;
                if !(tolerance > 0.0 && tolerance.is_finite()) {
                    return None;
                }
            }
            _ => return None,
        }
    }
    Some(Cli {
        mode: mode?,
        path: path?,
        preset,
        tolerance,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cli) = parse_cli(&args) else {
        return usage();
    };
    match cli.mode {
        "--out" => {
            let metrics = measure(cli.preset);
            let json = render_json(cli.preset, &metrics);
            if let Err(e) = std::fs::write(&cli.path, &json) {
                eprintln!("bench_netsim: cannot write {}: {e}", cli.path);
                return ExitCode::FAILURE;
            }
            println!("\nwrote {}:\n{json}", cli.path);
            ExitCode::SUCCESS
        }
        "--gate" => {
            let path = &cli.path;
            let baseline = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("bench_netsim: cannot read baseline {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let schema = parse_string(&baseline, "schema").unwrap_or("");
            if ![SCHEMA_V1, SCHEMA_V2, SCHEMA_V3, SCHEMA_V4].contains(&schema) {
                eprintln!(
                    "bench_netsim: {path} is not a {SCHEMA_V1}/{SCHEMA_V2}/{SCHEMA_V3}/{SCHEMA_V4} \
                     baseline"
                );
                return ExitCode::FAILURE;
            }
            // v1 baselines predate presets and were always measured on the
            // paper network.
            let base_preset = parse_string(&baseline, "preset").unwrap_or("paper");
            if base_preset != cli.preset.label() {
                eprintln!(
                    "bench_netsim: {path} was measured on preset '{base_preset}', \
                     but this gate runs '{}'",
                    cli.preset.label()
                );
                return ExitCode::FAILURE;
            }
            let metrics = measure(cli.preset);
            println!(
                "\n== gate vs {path} (preset {}, tolerance {:.0}%) ==",
                cli.preset.label(),
                cli.tolerance * 100.0
            );
            let mut failed = false;
            for m in &metrics {
                let base = parse_metric(&baseline, m.name);
                if m.informational {
                    // Stage shares drift with the measured workload; show
                    // them, never fail on them (and v1 baselines lack them).
                    match base {
                        Some(b) => println!(
                            "{:<36} baseline {:>14.3}  now {:>14.3}  (informational)",
                            m.name, b, m.value
                        ),
                        None => println!(
                            "{:<36} {:>23} now {:>14.3}  (informational)",
                            m.name, "-", m.value
                        ),
                    }
                    continue;
                }
                let Some(base) = base else {
                    // A floor-gated metric carries its pass bar with it, so
                    // pre-v4 baselines that lack the row still gate it.
                    if let Some(floor) = m.floor {
                        if m.value < floor {
                            eprintln!(
                                "{:<36} {:>23} now {:>14.3}  REGRESSED: below absolute \
                                 floor {floor}",
                                m.name, "-", m.value
                            );
                            failed = true;
                        } else {
                            println!(
                                "{:<36} {:>23} now {:>14.3}  (floor {floor})",
                                m.name, "-", m.value
                            );
                        }
                        continue;
                    }
                    eprintln!("{:<36} missing from baseline", m.name);
                    failed = true;
                    continue;
                };
                match check(m, base, cli.tolerance) {
                    Ok(line) => println!("{line}"),
                    Err(line) => {
                        eprintln!("{line}");
                        failed = true;
                    }
                }
            }
            if failed {
                eprintln!("bench gate FAILED");
                ExitCode::FAILURE
            } else {
                println!("bench gate passed");
                ExitCode::SUCCESS
            }
        }
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metric(name: &'static str, value: f64, higher_is_better: bool) -> Metric {
        Metric {
            name,
            value,
            higher_is_better,
            informational: false,
            floor: None,
        }
    }

    fn floored(value: f64, floor: f64) -> Metric {
        Metric {
            name: "shard_overhead_ratio",
            value,
            higher_is_better: true,
            informational: false,
            floor: Some(floor),
        }
    }

    #[test]
    fn json_round_trips_through_the_parser() {
        let metrics = vec![
            metric("idle_cycles_per_sec", 627_690.4, true),
            metric("ckpt_serialize_ns", 1_151_000.0, false),
        ];
        let json = render_json(Preset::Paper, &metrics);
        assert!(json.contains("\"schema\": \"stcc-bench-netsim-v4\""));
        assert_eq!(parse_string(&json, "schema"), Some(SCHEMA_V4));
        assert_eq!(parse_string(&json, "preset"), Some("paper"));
        assert_eq!(parse_metric(&json, "idle_cycles_per_sec"), Some(627_690.4));
        assert_eq!(parse_metric(&json, "ckpt_serialize_ns"), Some(1_151_000.0));
        assert_eq!(parse_metric(&json, "no_such_metric"), None);
        // The shard-row keys carry '@' and '=': they must survive the
        // flat format's quoting and lookup unchanged.
        let json = render_json(
            Preset::Big,
            &[metric("saturated_cycles_per_sec@shards=4", 123_456.7, true)],
        );
        assert_eq!(parse_string(&json, "preset"), Some("big"));
        assert_eq!(
            parse_metric(&json, "saturated_cycles_per_sec@shards=4"),
            Some(123_456.7)
        );
    }

    #[test]
    fn gate_tolerates_noise_but_fails_real_regressions() {
        // Throughput: 10% slower passes, 20% slower fails, faster passes.
        let base = 1_000.0;
        let tol = DEFAULT_TOLERANCE;
        assert!(check(&metric("t", 900.0, true), base, tol).is_ok());
        assert!(check(&metric("t", 800.0, true), base, tol).is_err());
        assert!(check(&metric("t", 2_000.0, true), base, tol).is_ok());
        // Latency: 10% costlier passes, 20% costlier fails, cheaper passes.
        assert!(check(&metric("l", 1_100.0, false), base, tol).is_ok());
        assert!(check(&metric("l", 1_200.0, false), base, tol).is_err());
        assert!(check(&metric("l", 500.0, false), base, tol).is_ok());
        // A looser tolerance admits what the default rejects.
        assert!(check(&metric("t", 800.0, true), base, 0.5).is_ok());
    }

    #[test]
    fn floor_metrics_gate_on_the_absolute_value_not_the_baseline() {
        // Above the floor passes even far below the recorded baseline;
        // below the floor fails even when it beats the baseline. No
        // tolerance ever widens the floor.
        assert!(check(&floored(0.95, 0.9), 2.0, DEFAULT_TOLERANCE).is_ok());
        assert!(check(&floored(0.85, 0.9), 0.5, DEFAULT_TOLERANCE).is_err());
        assert!(check(&floored(0.85, 0.9), 0.5, 10.0).is_err());
        assert!(check(&floored(0.9, 0.9), 0.9, DEFAULT_TOLERANCE).is_ok());
    }

    #[test]
    fn cli_parses_presets_tolerance_and_modes() {
        let args = |s: &[&str]| s.iter().map(|a| (*a).to_string()).collect::<Vec<_>>();
        let c = parse_cli(&args(&["--out", "x.json"])).unwrap();
        assert_eq!((c.mode, c.preset), ("--out", Preset::Paper));
        assert!((c.tolerance - DEFAULT_TOLERANCE).abs() < 1e-12);
        let c = parse_cli(&args(&[
            "--preset",
            "tiny",
            "--tolerance",
            "0.5",
            "--gate",
            "b.json",
        ]))
        .unwrap();
        assert_eq!((c.mode, c.preset), ("--gate", Preset::Tiny));
        assert!((c.tolerance - 0.5).abs() < 1e-12);
        let c = parse_cli(&args(&["--preset", "big", "--out", "x.json"])).unwrap();
        assert_eq!(c.preset, Preset::Big);
        assert!(parse_cli(&args(&["--gate"])).is_none());
        assert!(parse_cli(&args(&["--preset", "huge", "--out", "x"])).is_none());
        assert!(parse_cli(&args(&["--tolerance", "-1", "--out", "x"])).is_none());
        assert!(parse_cli(&args(&["x.json"])).is_none());
    }

    #[test]
    fn v1_baselines_still_parse() {
        let v1 =
            "{\n  \"schema\": \"stcc-bench-netsim-v1\",\n  \"idle_cycles_per_sec\": 603936.9\n}\n";
        assert_eq!(parse_string(v1, "schema"), Some(SCHEMA_V1));
        assert_eq!(parse_string(v1, "preset"), None);
        assert_eq!(parse_metric(v1, "idle_cycles_per_sec"), Some(603_936.9));
    }

    #[test]
    fn v2_baselines_still_parse() {
        let v2 = "{\n  \"schema\": \"stcc-bench-netsim-v2\",\n  \"preset\": \"tiny\",\n  \
                  \"saturated_cycles_per_sec\": 128311.1\n}\n";
        assert_eq!(parse_string(v2, "schema"), Some(SCHEMA_V2));
        assert_eq!(parse_string(v2, "preset"), Some("tiny"));
        assert_eq!(
            parse_metric(v2, "saturated_cycles_per_sec"),
            Some(128_311.1)
        );
        // A v2 baseline has no shard rows: the gate treats them as
        // informational and must simply show '-' rather than fail.
        assert_eq!(parse_metric(v2, "saturated_cycles_per_sec@shards=4"), None);
    }
}
