//! Machine-readable netsim performance baselines.
//!
//! Measures the simulator's headline numbers — idle and saturated
//! cycles/s on the paper's 256-node network, and checkpoint
//! serialize/restore time — with the same methodology as the `micro`
//! bench, then either writes them as a flat JSON baseline or gates the
//! current build against a committed one:
//!
//! ```text
//! bench_netsim --out BENCH_netsim.json     # write a new baseline
//! bench_netsim --gate BENCH_netsim.json    # fail on >15% regression
//! ```
//!
//! `scripts/ci.sh` runs the gate when `STCC_BENCH_GATE=1` (opt-in: the
//! tolerance assumes the baseline was measured on the same host). The JSON
//! is hand-rolled and hand-parsed — one metric per line, no dependencies —
//! keeping the build hermetic.

use bench::harness::{BenchConfig, Group};
use std::hint::black_box;
use std::process::ExitCode;
use wormsim::{DeadlockMode, NetConfig, Network, NoControl};

/// Schema tag written into (and required of) every baseline file.
const SCHEMA: &str = "stcc-bench-netsim-v1";

/// Largest tolerated regression per metric, as a fraction.
const TOLERANCE: f64 = 0.15;

/// One measured metric: name, value, and whether bigger is better
/// (throughputs) or worse (latencies).
struct Metric {
    name: &'static str,
    value: f64,
    higher_is_better: bool,
}

fn measure() -> Vec<Metric> {
    let mut g = Group::new(
        "netsim baseline (1000 cycles/iter)",
        BenchConfig {
            samples: 10,
            iters_per_sample: 1,
            warmup_iters: 1,
        },
    );
    let cycles_per_iter = 1_000u64;

    // Idle 16-ary 2-cube: the floor cost of one cycle over 256 routers.
    {
        let mut net = Network::new(NetConfig::paper(DeadlockMode::PAPER_RECOVERY)).unwrap();
        let mut src = |_: u64, _: usize| None;
        g.bench_units("idle_256_nodes", cycles_per_iter as f64, || {
            net.run(cycles_per_iter, &mut src, &mut NoControl);
            black_box(net.now())
        });
    }

    // Saturated: worst-case per-cycle cost (pre-warmed network).
    {
        let mut net = Network::new(NetConfig::paper(DeadlockMode::PAPER_RECOVERY)).unwrap();
        let nodes = net.torus().node_count();
        let mut x = 0usize;
        let mut src = move |_: u64, node: usize| {
            x = x
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(node + 1);
            Some((x >> 33) % nodes)
        };
        net.run(5_000, &mut src, &mut NoControl); // warm into saturation
        g.bench_units("saturated_256_nodes", cycles_per_iter as f64, || {
            net.run(cycles_per_iter, &mut src, &mut NoControl);
            black_box(net.counters().delivered_flits)
        });
    }

    // Checkpoint codec cost on a warmed tuned simulation.
    {
        use stcc::{Scheme, SimConfig, Simulation, TuneConfig};
        use traffic::{Pattern, Process, Workload};
        let cfg = SimConfig {
            net: NetConfig::paper(DeadlockMode::PAPER_RECOVERY),
            workload: Workload::steady(Pattern::UniformRandom, Process::bernoulli(0.014)),
            scheme: Scheme::Tuned(TuneConfig::paper()),
            cycles: 1 << 40,
            warmup: 1_000,
            seed: 0xBE7C4,
        };
        let mut sim = Simulation::new(cfg.clone()).unwrap();
        for _ in 0..2_000 {
            sim.step();
        }
        g.bench("ckpt_serialize", || black_box(sim.checkpoint().len()));
        let snap = sim.checkpoint();
        g.bench("ckpt_restore", || {
            let restored = Simulation::restore(cfg.clone(), None, &snap).unwrap();
            black_box(restored.now())
        });
    }

    let r = g.results();
    vec![
        Metric {
            name: "idle_cycles_per_sec",
            value: r[0].units_per_second().unwrap(),
            higher_is_better: true,
        },
        Metric {
            name: "saturated_cycles_per_sec",
            value: r[1].units_per_second().unwrap(),
            higher_is_better: true,
        },
        Metric {
            name: "ckpt_serialize_ns",
            value: r[2].median_ns,
            higher_is_better: false,
        },
        Metric {
            name: "ckpt_restore_ns",
            value: r[3].median_ns,
            higher_is_better: false,
        },
    ]
}

/// Renders the baseline as flat JSON, one metric per line.
fn render_json(metrics: &[Metric]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    for (i, m) in metrics.iter().enumerate() {
        let comma = if i + 1 == metrics.len() { "" } else { "," };
        out.push_str(&format!("  \"{}\": {:.1}{comma}\n", m.name, m.value));
    }
    out.push_str("}\n");
    out
}

/// Extracts `"key": <number>` from the flat baseline format. Returns `None`
/// when the key is absent or its value does not parse.
fn parse_metric(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Compares a fresh measurement against a baseline value; returns an error
/// line when it regressed beyond [`TOLERANCE`].
fn check(m: &Metric, baseline: f64) -> Result<String, String> {
    let ratio = m.value / baseline;
    let (regressed, direction) = if m.higher_is_better {
        (ratio < 1.0 - TOLERANCE, "slower")
    } else {
        (ratio > 1.0 + TOLERANCE, "costlier")
    };
    let line = format!(
        "{:<26} baseline {:>14.1}  now {:>14.1}  ({:+.1}%)",
        m.name,
        baseline,
        m.value,
        (ratio - 1.0) * 100.0
    );
    if regressed {
        Err(format!(
            "{line}  REGRESSED: >{:.0}% {direction}",
            TOLERANCE * 100.0
        ))
    } else {
        Ok(line)
    }
}

fn usage() -> ExitCode {
    eprintln!("usage: bench_netsim --out <file.json> | --gate <baseline.json>");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [mode, path] = args.as_slice() else {
        return usage();
    };
    match mode.as_str() {
        "--out" => {
            let metrics = measure();
            let json = render_json(&metrics);
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("bench_netsim: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("\nwrote {path}:\n{json}");
            ExitCode::SUCCESS
        }
        "--gate" => {
            let baseline = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("bench_netsim: cannot read baseline {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if parse_metric(&baseline, "schema").is_some()
                || !baseline.contains(&format!("\"schema\": \"{SCHEMA}\""))
            {
                eprintln!("bench_netsim: {path} is not a {SCHEMA} baseline");
                return ExitCode::FAILURE;
            }
            let metrics = measure();
            println!(
                "\n== gate vs {path} (tolerance {:.0}%) ==",
                TOLERANCE * 100.0
            );
            let mut failed = false;
            for m in &metrics {
                let Some(base) = parse_metric(&baseline, m.name) else {
                    eprintln!("{:<26} missing from baseline", m.name);
                    failed = true;
                    continue;
                };
                match check(m, base) {
                    Ok(line) => println!("{line}"),
                    Err(line) => {
                        eprintln!("{line}");
                        failed = true;
                    }
                }
            }
            if failed {
                eprintln!("bench gate FAILED");
                ExitCode::FAILURE
            } else {
                println!("bench gate passed");
                ExitCode::SUCCESS
            }
        }
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metric(name: &'static str, value: f64, higher_is_better: bool) -> Metric {
        Metric {
            name,
            value,
            higher_is_better,
        }
    }

    #[test]
    fn json_round_trips_through_the_parser() {
        let metrics = vec![
            metric("idle_cycles_per_sec", 627_690.4, true),
            metric("ckpt_serialize_ns", 1_151_000.0, false),
        ];
        let json = render_json(&metrics);
        assert!(json.contains("\"schema\": \"stcc-bench-netsim-v1\""));
        assert_eq!(parse_metric(&json, "idle_cycles_per_sec"), Some(627_690.4));
        assert_eq!(parse_metric(&json, "ckpt_serialize_ns"), Some(1_151_000.0));
        assert_eq!(parse_metric(&json, "no_such_metric"), None);
    }

    #[test]
    fn gate_tolerates_noise_but_fails_real_regressions() {
        // Throughput: 10% slower passes, 20% slower fails, faster passes.
        let base = 1_000.0;
        assert!(check(&metric("t", 900.0, true), base).is_ok());
        assert!(check(&metric("t", 800.0, true), base).is_err());
        assert!(check(&metric("t", 2_000.0, true), base).is_ok());
        // Latency: 10% costlier passes, 20% costlier fails, cheaper passes.
        assert!(check(&metric("l", 1_100.0, false), base).is_ok());
        assert!(check(&metric("l", 1_200.0, false), base).is_err());
        assert!(check(&metric("l", 500.0, false), base).is_ok());
    }
}
