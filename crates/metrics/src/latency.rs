/// Streaming latency statistics: count, sum, extrema and a log₂ histogram
/// (bucket `i` holds latencies in `[2^i, 2^(i+1))`), giving approximate
/// percentiles without storing samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyStats {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; 40],
}

impl Default for LatencyStats {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyStats {
    /// An empty collector.
    #[must_use]
    pub fn new() -> Self {
        LatencyStats {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; 40],
        }
    }

    /// Serializes the collector into `enc` (for checkpointing).
    pub fn save_state(&self, enc: &mut checkpoint::Enc) {
        enc.u64(self.count);
        enc.u64(self.sum);
        enc.u64(self.min);
        enc.u64(self.max);
        for &b in &self.buckets {
            enc.u64(b);
        }
    }

    /// Reads a collector serialized with [`LatencyStats::save_state`].
    ///
    /// # Errors
    ///
    /// Returns a [`checkpoint::CheckpointError`] on a truncated stream.
    pub fn restore_state(
        dec: &mut checkpoint::Dec<'_>,
    ) -> Result<Self, checkpoint::CheckpointError> {
        let count = dec.u64()?;
        let sum = dec.u64()?;
        let min = dec.u64()?;
        let max = dec.u64()?;
        let mut buckets = [0u64; 40];
        for b in &mut buckets {
            *b = dec.u64()?;
        }
        Ok(LatencyStats {
            count,
            sum,
            min,
            max,
            buckets,
        })
    }

    /// Records one latency sample (in cycles).
    pub fn record(&mut self, latency: u64) {
        self.count += 1;
        self.sum += latency;
        self.min = self.min.min(latency);
        self.max = self.max.max(latency);
        let bucket = (64 - latency.leading_zeros()).min(39) as usize;
        self.buckets[bucket] += 1;
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency, or `None` with no samples.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Smallest sample, or `None` with no samples.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` with no samples.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Approximate `p`-th percentile (`0.0..=1.0`): the upper edge of the
    /// histogram bucket containing it, or `None` with no samples.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    #[must_use]
    pub fn percentile(&self, p: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&p), "percentile must be in [0, 1]");
        if self.count == 0 {
            return None;
        }
        let target = (p * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return Some((1u64 << i).min(self.max).max(self.min));
            }
        }
        Some(self.max)
    }

    /// Merges another collector into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_report_none() {
        let s = LatencyStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.percentile(0.5), None);
    }

    #[test]
    fn mean_min_max() {
        let mut s = LatencyStats::new();
        for l in [5u64, 10, 15, 100] {
            s.record(l);
        }
        assert_eq!(s.count(), 4);
        assert_eq!(s.mean(), Some(32.5));
        assert_eq!(s.min(), Some(5));
        assert_eq!(s.max(), Some(100));
    }

    #[test]
    fn percentile_is_monotone_and_bounded() {
        let mut s = LatencyStats::new();
        for l in 1..=1000u64 {
            s.record(l);
        }
        let p50 = s.percentile(0.5).unwrap();
        let p99 = s.percentile(0.99).unwrap();
        assert!(p50 <= p99);
        assert!((256..=1024).contains(&p50), "p50 bucket edge: {p50}");
        assert!(p99 <= 1000);
    }

    #[test]
    fn merge_combines() {
        let mut a = LatencyStats::new();
        a.record(10);
        let mut b = LatencyStats::new();
        b.record(30);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), Some(20.0));
        assert_eq!(a.min(), Some(10));
        assert_eq!(a.max(), Some(30));
    }

    #[test]
    fn zero_latency_is_representable() {
        let mut s = LatencyStats::new();
        s.record(0);
        assert_eq!(s.mean(), Some(0.0));
        assert_eq!(s.percentile(1.0), Some(0));
    }
}
