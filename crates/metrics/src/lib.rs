//! `simstats` — measurement infrastructure for the stcc reproduction.
//!
//! Collects exactly what the paper's evaluation reports:
//!
//! * [`LatencyStats`] — packet latency aggregates (mean/min/max plus a
//!   log₂ histogram for approximate percentiles),
//! * [`WindowSeries`] — windowed event counts, used for the
//!   throughput-vs-time plots (Figures 4 and 7),
//! * [`GaugeSeries`] — periodically sampled values, used for the
//!   threshold-vs-time plot (Figure 4),
//! * [`RunSummary`] — one steady-state simulation's headline numbers
//!   (normalized accepted traffic and average latency vs offered load).
//!
//! # Examples
//!
//! ```
//! use simstats::LatencyStats;
//!
//! let mut lat = LatencyStats::new();
//! for l in [10, 20, 30] {
//!     lat.record(l);
//! }
//! assert_eq!(lat.mean(), Some(20.0));
//! assert_eq!(lat.max(), Some(30));
//! ```

mod latency;
mod series;
mod summary;

pub use latency::LatencyStats;
pub use series::{GaugeSeries, WindowSeries};
pub use summary::{jain_fairness, RunSummary};
