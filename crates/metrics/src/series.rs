/// Windowed event counts: events added at arbitrary cycles are accumulated
/// into fixed-width windows, producing the throughput-vs-time series of
/// Figures 4 and 7.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowSeries {
    window: u64,
    points: Vec<u64>,
}

impl WindowSeries {
    /// A series with the given window width in cycles.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    #[must_use]
    pub fn new(window: u64) -> Self {
        assert!(window > 0, "window width must be nonzero");
        WindowSeries {
            window,
            points: Vec::new(),
        }
    }

    /// The window width in cycles.
    #[must_use]
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Adds `count` events at cycle `now`.
    pub fn add(&mut self, now: u64, count: u64) {
        let idx = (now / self.window) as usize;
        if self.points.len() <= idx {
            self.points.resize(idx + 1, 0);
        }
        self.points[idx] += count;
    }

    /// Iterates `(window_start_cycle, event_count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.points
            .iter()
            .enumerate()
            .map(|(i, &c)| (i as u64 * self.window, c))
    }

    /// Iterates `(window_start_cycle, events_per_cycle_per_node)` pairs —
    /// the paper's normalized throughput unit.
    pub fn normalized(&self, nodes: usize) -> impl Iterator<Item = (u64, f64)> + '_ {
        let denom = self.window as f64 * nodes as f64;
        self.iter().map(move |(t, c)| (t, c as f64 / denom))
    }

    /// Total events recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.points.iter().sum()
    }
}

/// Periodically sampled values (e.g. the self-tuner's threshold), producing
/// the threshold-vs-time series of Figure 4.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GaugeSeries {
    points: Vec<(u64, f64)>,
}

impl GaugeSeries {
    /// An empty series.
    #[must_use]
    pub fn new() -> Self {
        GaugeSeries::default()
    }

    /// Records `value` at cycle `now`.
    pub fn sample(&mut self, now: u64, value: f64) {
        self.points.push((now, value));
    }

    /// The recorded `(cycle, value)` samples, in insertion order.
    #[must_use]
    pub fn points(&self) -> &[(u64, f64)] {
        &self.points
    }

    /// The most recent sample.
    #[must_use]
    pub fn last(&self) -> Option<(u64, f64)> {
        self.points.last().copied()
    }

    /// Largest sampled value.
    #[must_use]
    pub fn max_value(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_accumulate_by_cycle() {
        let mut s = WindowSeries::new(10);
        s.add(0, 1);
        s.add(9, 2);
        s.add(10, 5);
        s.add(25, 7);
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![(0, 3), (10, 5), (20, 7)]);
        assert_eq!(s.total(), 15);
    }

    #[test]
    fn normalization_divides_by_window_and_nodes() {
        let mut s = WindowSeries::new(100);
        s.add(50, 400);
        let v: Vec<_> = s.normalized(4).collect();
        assert_eq!(v, vec![(0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "window width")]
    fn zero_window_rejected() {
        let _ = WindowSeries::new(0);
    }

    #[test]
    fn gauge_records_in_order() {
        let mut g = GaugeSeries::new();
        g.sample(0, 1.5);
        g.sample(96, 3.0);
        g.sample(192, 2.0);
        assert_eq!(g.points().len(), 3);
        assert_eq!(g.last(), Some((192, 2.0)));
        assert_eq!(g.max_value(), Some(3.0));
        assert_eq!(GaugeSeries::new().max_value(), None);
    }
}
