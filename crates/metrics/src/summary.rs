use crate::LatencyStats;

/// Headline results of one steady-state simulation run, measured after the
/// warm-up window (the paper ignores the first 100 000 of 600 000 cycles).
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Measured cycles (total minus warm-up).
    pub measured_cycles: u64,
    /// Node count.
    pub nodes: usize,
    /// Flits per packet.
    pub packet_len: usize,
    /// Offered load in packets/node/cycle (mean of the workload over the
    /// measured window).
    pub offered_rate: f64,
    /// Flits delivered during the measured window.
    pub delivered_flits: u64,
    /// Packets delivered during the measured window.
    pub delivered_packets: u64,
    /// Network latency (header injection to tail consumption) of packets
    /// *generated* after warm-up.
    pub network_latency: LatencyStats,
    /// End-to-end latency (generation to tail consumption) of the same
    /// packets, including source queueing.
    pub total_latency: LatencyStats,
    /// Packets that finished through the recovery network.
    pub recovered_packets: u64,
    /// Injection-gate denials during the measured window.
    pub throttled_injections: u64,
}

impl RunSummary {
    /// Delivered bandwidth in flits/node/cycle (the paper's normalized
    /// accepted traffic, flit units).
    #[must_use]
    pub fn throughput_flits(&self) -> f64 {
        self.delivered_flits as f64 / (self.measured_cycles as f64 * self.nodes as f64)
    }

    /// Delivered bandwidth in packets/node/cycle (Figure 1/3/5 y-axis).
    #[must_use]
    pub fn throughput_packets(&self) -> f64 {
        self.delivered_packets as f64 / (self.measured_cycles as f64 * self.nodes as f64)
    }

    /// Fraction of offered packets actually delivered (1.0 below
    /// saturation; < 1.0 when the network, its queues, or throttling refuse
    /// load).
    #[must_use]
    pub fn acceptance(&self) -> f64 {
        if self.offered_rate == 0.0 {
            1.0
        } else {
            self.throughput_packets() / self.offered_rate
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary() -> RunSummary {
        RunSummary {
            measured_cycles: 1000,
            nodes: 64,
            packet_len: 16,
            offered_rate: 0.02,
            delivered_flits: 16_000,
            delivered_packets: 1000,
            network_latency: LatencyStats::new(),
            total_latency: LatencyStats::new(),
            recovered_packets: 0,
            throttled_injections: 0,
        }
    }

    #[test]
    fn throughput_units() {
        let s = summary();
        assert!((s.throughput_flits() - 0.25).abs() < 1e-12);
        assert!((s.throughput_packets() - 0.015_625).abs() < 1e-12);
    }

    #[test]
    fn acceptance_ratio() {
        let s = summary();
        assert!((s.acceptance() - 0.78125).abs() < 1e-9);
        let idle = RunSummary {
            offered_rate: 0.0,
            ..summary()
        };
        assert_eq!(idle.acceptance(), 1.0);
    }
}
