use crate::LatencyStats;

/// Headline results of one steady-state simulation run, measured after the
/// warm-up window (the paper ignores the first 100 000 of 600 000 cycles).
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Measured cycles (total minus warm-up).
    pub measured_cycles: u64,
    /// Node count.
    pub nodes: usize,
    /// Flits per packet.
    pub packet_len: usize,
    /// Offered load in packets/node/cycle (mean of the workload over the
    /// measured window).
    pub offered_rate: f64,
    /// Flits delivered during the measured window.
    pub delivered_flits: u64,
    /// Packets delivered during the measured window.
    pub delivered_packets: u64,
    /// Network latency (header injection to tail consumption) of packets
    /// *generated* after warm-up.
    pub network_latency: LatencyStats,
    /// End-to-end latency (generation to tail consumption) of the same
    /// packets, including source queueing.
    pub total_latency: LatencyStats,
    /// Packets that finished through the recovery network.
    pub recovered_packets: u64,
    /// Injection-gate denials during the measured window.
    pub throttled_injections: u64,
    /// Jain's fairness index over per-source delivered packets during the
    /// measured window: 1.0 when every source delivered equally, `1/nodes`
    /// when one source monopolized the network (and, by convention, 1.0
    /// when nothing was delivered at all).
    pub fairness: f64,
}

/// Jain's fairness index `(Σx)² / (n·Σx²)` over per-source counts.
///
/// 1.0 means perfectly equal shares, `1/n` means one source took
/// everything. Empty input and all-zero input return 1.0 (nothing was
/// delivered, so nobody was treated unfairly).
///
/// ```
/// use simstats::jain_fairness;
/// assert_eq!(jain_fairness(&[5, 5, 5, 5]), 1.0);
/// assert_eq!(jain_fairness(&[8, 0, 0, 0]), 0.25);
/// assert_eq!(jain_fairness(&[]), 1.0);
/// ```
#[must_use]
pub fn jain_fairness(per_source: &[u64]) -> f64 {
    let sum: f64 = per_source.iter().map(|&x| x as f64).sum();
    if sum == 0.0 {
        return 1.0;
    }
    let sum_sq: f64 = per_source.iter().map(|&x| (x as f64) * (x as f64)).sum();
    (sum * sum) / (per_source.len() as f64 * sum_sq)
}

impl RunSummary {
    /// Delivered bandwidth in flits/node/cycle (the paper's normalized
    /// accepted traffic, flit units).
    #[must_use]
    pub fn throughput_flits(&self) -> f64 {
        self.delivered_flits as f64 / (self.measured_cycles as f64 * self.nodes as f64)
    }

    /// Delivered bandwidth in packets/node/cycle (Figure 1/3/5 y-axis).
    #[must_use]
    pub fn throughput_packets(&self) -> f64 {
        self.delivered_packets as f64 / (self.measured_cycles as f64 * self.nodes as f64)
    }

    /// Fraction of offered packets actually delivered (1.0 below
    /// saturation; < 1.0 when the network, its queues, or throttling refuse
    /// load).
    #[must_use]
    pub fn acceptance(&self) -> f64 {
        if self.offered_rate == 0.0 {
            1.0
        } else {
            self.throughput_packets() / self.offered_rate
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary() -> RunSummary {
        RunSummary {
            measured_cycles: 1000,
            nodes: 64,
            packet_len: 16,
            offered_rate: 0.02,
            delivered_flits: 16_000,
            delivered_packets: 1000,
            network_latency: LatencyStats::new(),
            total_latency: LatencyStats::new(),
            recovered_packets: 0,
            throttled_injections: 0,
            fairness: 1.0,
        }
    }

    #[test]
    fn jain_fairness_endpoints() {
        assert_eq!(jain_fairness(&[3, 3, 3, 3]), 1.0);
        assert_eq!(jain_fairness(&[10, 0, 0, 0]), 0.25);
        assert_eq!(jain_fairness(&[0, 0]), 1.0, "idle run is vacuously fair");
        let mixed = jain_fairness(&[4, 2, 2, 0]);
        assert!(mixed > 0.25 && mixed < 1.0, "partial skew lands between");
    }

    #[test]
    fn throughput_units() {
        let s = summary();
        assert!((s.throughput_flits() - 0.25).abs() < 1e-12);
        assert!((s.throughput_packets() - 0.015_625).abs() < 1e-12);
    }

    #[test]
    fn acceptance_ratio() {
        let s = summary();
        assert!((s.acceptance() - 0.78125).abs() < 1e-9);
        let idle = RunSummary {
            offered_rate: 0.0,
            ..summary()
        };
        assert_eq!(idle.acceptance(), 1.0);
    }
}
