#!/bin/bash
# Regenerates every recorded artifact under results/ (see DESIGN.md S5).
# Scales are chosen for single-core wall-clock economy; pass your own
# --scale to the binaries for paper-scale runs.
set -u
cd "$(dirname "$0")"
BIN=target/release
log() { echo "=== $(date +%H:%M:%S) $*"; }
log table1;   $BIN/table1    --out results > results/table1.txt 2>&1
log fig6;     $BIN/fig6      --scale reduced --out results > results/fig6.txt 2>&1
log fig1;     $BIN/fig1      --scale reduced --out results > results/fig1.txt 2>&1
log fig2;     $BIN/fig2      --scale smoke   --out results > results/fig2.txt 2>&1
log fig4;     $BIN/fig4      --scale reduced --out results > results/fig4.txt 2>&1
log fig3;     $BIN/fig3      --scale smoke   --out results > results/fig3.txt 2>&1
log fig5;     $BIN/fig5      --scale smoke   --out results > results/fig5.txt 2>&1
log fig7;     $BIN/fig7      --scale reduced --out results > results/fig7.txt 2>&1
for a in extrapolation tuning_period increments sideband_bits hop_delay; do
  log ablation_$a; $BIN/ablation_$a --scale smoke --out results > results/ablation_$a.txt 2>&1
done
log done
