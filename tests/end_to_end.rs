//! Cross-crate integration tests: the full stack (topology → simulator →
//! controllers → facade) exercised end to end through the public API.

use stcc::prelude::*;
use stcc::Simulation;

fn sim(scheme: Scheme, deadlock: DeadlockMode, rate: f64, cycles: u64, seed: u64) -> Simulation {
    Simulation::new(SimConfig {
        net: NetConfig::small(deadlock),
        workload: Workload::steady(Pattern::UniformRandom, Process::bernoulli(rate)),
        scheme,
        cycles,
        warmup: cycles / 6,
        seed,
    })
    .expect("valid simulation")
}

#[test]
fn light_load_is_fully_accepted_under_all_schemes_and_modes() {
    for deadlock in [DeadlockMode::Avoidance, DeadlockMode::PAPER_RECOVERY] {
        for scheme in [Scheme::Base, Scheme::Alo, Scheme::tuned_paper()] {
            let mut s = sim(scheme.clone(), deadlock, 0.002, 15_000, 1);
            s.run_to_end();
            let sum = s.summary().unwrap();
            assert!(
                sum.acceptance() > 0.9,
                "{} under {deadlock:?}: acceptance {}",
                scheme.label(),
                sum.acceptance()
            );
        }
    }
}

#[test]
fn flits_are_conserved_after_drain() {
    // Inject for a while, then stop and let the network drain completely.
    let mut net = wormsim::Network::new(NetConfig::small(DeadlockMode::Avoidance)).unwrap();
    let nodes = net.torus().node_count();
    let mut runner = traffic::WorkloadRunner::new(
        &Workload::steady(Pattern::UniformRandom, Process::bernoulli(0.01)),
        nodes,
        5,
    )
    .unwrap();
    let mut ctl = wormsim::NoControl;
    net.run(5_000, &mut |now, node| runner.poll(now, node), &mut ctl);
    let mut silent = |_: u64, _: usize| None;
    net.run(20_000, &mut silent, &mut ctl);
    let c = net.counters();
    assert_eq!(
        c.generated_packets, c.delivered_packets,
        "all generated packets must eventually be delivered"
    );
    assert_eq!(net.live_packets(), 0);
    assert_eq!(
        c.delivered_flits,
        c.delivered_packets * 16,
        "every flit of every packet must arrive"
    );
    assert_eq!(
        net.full_buffer_count(),
        0,
        "drained network has no full buffers"
    );
}

#[test]
fn recovery_mode_also_drains_completely() {
    let mut net = wormsim::Network::new(NetConfig::small(DeadlockMode::PAPER_RECOVERY)).unwrap();
    let nodes = net.torus().node_count();
    let mut runner = traffic::WorkloadRunner::new(
        &Workload::steady(Pattern::Butterfly, Process::bernoulli(0.05)),
        nodes,
        6,
    )
    .unwrap();
    let mut ctl = wormsim::NoControl;
    net.run(8_000, &mut |now, node| runner.poll(now, node), &mut ctl);
    let mut silent = |_: u64, _: usize| None;
    // Deep saturation drains serially through the token: allow plenty.
    net.run(400_000, &mut silent, &mut ctl);
    let c = net.counters();
    assert_eq!(c.generated_packets, c.delivered_packets);
    assert_eq!(net.live_packets(), 0);
}

#[test]
fn avoidance_mode_never_stalls() {
    // Duato's escape channels guarantee forward progress; the watchdog must
    // never observe a long zero-delivery window while packets are in flight.
    let mut net = wormsim::Network::new(NetConfig::small(DeadlockMode::Avoidance)).unwrap();
    let nodes = net.torus().node_count();
    let mut runner = traffic::WorkloadRunner::new(
        &Workload::steady(Pattern::BitReversal, Process::bernoulli(0.08)),
        nodes,
        7,
    )
    .unwrap();
    let mut ctl = wormsim::NoControl;
    for _ in 0..400 {
        net.run(100, &mut |now, node| runner.poll(now, node), &mut ctl);
        assert!(
            !net.progress_stalled(20_000),
            "avoidance network stalled at cycle {}",
            net.now()
        );
    }
}

/// The saturation avalanche needs the paper's full-size 16-ary 2-cube:
/// smaller tori saturate gracefully (shorter worms, shallower trees), which
/// the `experiments` sweeps document. These two tests are therefore the
/// slowest in the suite.
fn paper_sim(scheme: Scheme, rate: f64, seed: u64) -> Simulation {
    Simulation::new(SimConfig {
        net: NetConfig::paper(DeadlockMode::PAPER_RECOVERY),
        workload: Workload::steady(Pattern::UniformRandom, Process::bernoulli(rate)),
        scheme,
        cycles: 16_000,
        warmup: 3_000,
        seed,
    })
    .expect("valid paper-scale simulation")
}

#[test]
fn tuned_beats_base_at_overload_under_recovery() {
    let mut base = paper_sim(Scheme::Base, 0.06, 2);
    base.run_to_end();
    let mut tuned = paper_sim(Scheme::tuned_paper(), 0.06, 2);
    tuned.run_to_end();
    let b = base.summary().unwrap().throughput_flits();
    let t = tuned.summary().unwrap().throughput_flits();
    assert!(
        t > 2.0 * b,
        "self-tuning should far outperform the collapsed base network: tune {t} vs base {b}"
    );
}

#[test]
fn base_collapses_past_saturation_under_recovery() {
    let mut below = paper_sim(Scheme::Base, 0.01, 3);
    below.run_to_end();
    let mut beyond = paper_sim(Scheme::Base, 0.08, 3);
    beyond.run_to_end();
    let pre = below.summary().unwrap().throughput_flits();
    let post = beyond.summary().unwrap().throughput_flits();
    assert!(
        post < 0.7 * pre,
        "8x the offered load should deliver *less* than moderate load: {post} vs {pre}"
    );
}

#[test]
fn self_addressed_packets_are_delivered_locally() {
    let mut net = wormsim::Network::new(NetConfig::small(DeadlockMode::Avoidance)).unwrap();
    let mut sent = false;
    let mut src = move |_: u64, node: usize| {
        if node == 3 && !sent {
            sent = true;
            Some(3)
        } else {
            None
        }
    };
    net.run(200, &mut src, &mut wormsim::NoControl);
    assert_eq!(net.counters().delivered_packets, 1);
    let rec = net.drain_deliveries().next().unwrap();
    assert_eq!((rec.src, rec.dst), (3, 3));
}

#[test]
fn whole_stack_is_deterministic() {
    let run = || {
        let mut s = sim(
            Scheme::tuned_paper(),
            DeadlockMode::PAPER_RECOVERY,
            0.03,
            20_000,
            11,
        );
        s.run_to_end();
        let sum = s.summary().unwrap();
        (
            sum.delivered_flits,
            sum.network_latency.mean(),
            s.tuned()
                .and_then(stcc::SelfTuned::threshold)
                .map(f64::to_bits),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn zero_load_latency_matches_the_pipeline_model() {
    // A single packet across a known distance: 3 cycles per hop for the
    // header (1 routing + 1 crossbar + 1 link) plus one cycle per remaining
    // flit at the delivery channel, plus injection/delivery serialization.
    let mut net = wormsim::Network::new(NetConfig::small(DeadlockMode::Avoidance)).unwrap();
    let mut one = Some(5usize); // distance 5 along dimension 0? node 5 is 5 hops... use it
    let mut src = move |_: u64, node: usize| if node == 0 { one.take() } else { None };
    net.run(500, &mut src, &mut wormsim::NoControl);
    let rec = net.drain_deliveries().next().expect("delivered");
    let dist = net.torus().distance(0, 5) as u64;
    let lat = rec.network_latency();
    let floor = 3 * dist + 15; // header pipeline + body flits
    assert!(
        lat >= floor && lat <= floor + 3 * dist + 10,
        "zero-load latency {lat} outside [{floor}, {}]",
        floor + 3 * dist + 10
    );
}
