//! Fault-injection integration tests: the full stack under the `faults`
//! crate's plans, exercising the acceptance criteria of the resilience
//! subsystem end to end through the public API.

use faults::{FaultPlan, HotspotFault, LinkFault, SidebandFaults};
use stcc::prelude::*;
use stcc::{SimError, Simulation};

fn cfg(scheme: Scheme, net: NetConfig, rate: f64, cycles: u64, seed: u64) -> SimConfig {
    SimConfig {
        net,
        workload: Workload::steady(Pattern::UniformRandom, Process::bernoulli(rate)),
        scheme,
        cycles,
        warmup: cycles / 6,
        seed,
    }
}

fn blackout(seed: u64) -> FaultPlan {
    FaultPlan::sideband_only(
        seed,
        SidebandFaults {
            loss_rate: 1.0,
            ..SidebandFaults::none()
        },
    )
}

/// The headline acceptance criterion: with 100% side-band loss the tuned
/// controller must not panic, its watchdog must trip (visibly, in the
/// counters), and delivered bandwidth must stay within 10% of a static
/// threshold scheme suffering the same outage (both degrade to uncontrolled
/// behavior — the tuner must not do *worse* than that).
#[test]
fn total_sideband_blackout_degrades_gracefully() {
    let net = NetConfig::paper(DeadlockMode::PAPER_RECOVERY);
    let run = |scheme: Scheme| {
        let mut sim =
            Simulation::with_faults(cfg(scheme, net.clone(), 0.06, 16_000, 2), blackout(77))
                .expect("valid faulted simulation");
        sim.run_to_end();
        (
            sim.summary().unwrap().throughput_flits(),
            sim.fault_report(),
        )
    };
    let (tuned_tput, tuned_report) = run(Scheme::tuned_paper());
    let (static_tput, static_report) = run(Scheme::Static {
        threshold: 250,
        sideband: sideband::SidebandConfig::paper(),
    });

    assert!(
        tuned_report.watchdog_trips >= 1,
        "watchdog must trip during a blackout"
    );
    assert!(tuned_report.watchdog_active, "the outage never ends");
    assert_eq!(tuned_report.watchdog_rearms, 0);
    let sb = tuned_report.sideband.expect("tuned has a side-band");
    assert!(sb.lost_snapshots > 0, "losses must be counted");
    let sb_static = static_report.sideband.expect("static has a side-band");
    assert_eq!(
        sb.lost_snapshots, sb_static.lost_snapshots,
        "same plan, same losses"
    );

    assert!(
        (tuned_tput - static_tput).abs() <= 0.10 * static_tput,
        "blackout: tuned ({tuned_tput}) must stay within 10% of static ({static_tput})"
    );
}

/// A zero-fault plan must leave the run bit-identical to a plain
/// [`Simulation::new`] with the same configuration.
#[test]
fn quiet_plan_is_bit_identical_to_no_plan() {
    let c = cfg(
        Scheme::tuned_paper(),
        NetConfig::small(DeadlockMode::PAPER_RECOVERY),
        0.03,
        20_000,
        11,
    );
    let mut plain = Simulation::new(c.clone()).unwrap();
    plain.run_to_end();
    let mut faulted = Simulation::with_faults(c, FaultPlan::none(99)).unwrap();
    faulted.run_to_end();

    let a = plain.summary().unwrap();
    let b = faulted.summary().unwrap();
    assert_eq!(a.delivered_flits, b.delivered_flits);
    assert_eq!(a.delivered_packets, b.delivered_packets);
    assert_eq!(a.throttled_injections, b.throttled_injections);
    assert_eq!(
        a.network_latency.mean().map(f64::to_bits),
        b.network_latency.mean().map(f64::to_bits),
        "latency distribution must match to the bit"
    );
    assert_eq!(
        plain.tuned().unwrap().threshold().map(f64::to_bits),
        faulted.tuned().unwrap().threshold().map(f64::to_bits)
    );
    assert!(faulted.fault_report().is_clean());
}

/// Identical `(SimConfig, FaultPlan)` pairs must produce identical
/// summaries *and* identical fault counters, even for a plan exercising
/// every fault class at once.
#[test]
fn faulty_runs_are_deterministic() {
    let plan = FaultPlan {
        seed: 0xDEC0DE,
        sideband: SidebandFaults {
            loss_rate: 0.3,
            delay_rate: 0.3,
            max_delay: 200,
            corrupt_rate: 0.2,
            corrupt_bits: 2,
        },
        links: vec![LinkFault {
            node: 3,
            port: 0,
            start: 2_000,
            end: 6_000,
        }],
        hotspots: vec![HotspotFault {
            node: 5,
            start: 4_000,
            end: 8_000,
        }],
    };
    let run = || {
        let mut sim = Simulation::with_faults(
            cfg(
                Scheme::tuned_paper(),
                NetConfig::small(DeadlockMode::PAPER_RECOVERY),
                0.03,
                20_000,
                11,
            ),
            plan.clone(),
        )
        .unwrap();
        sim.run_to_end();
        let s = sim.summary().unwrap();
        (
            s.delivered_flits,
            s.throttled_injections,
            s.network_latency.mean().map(f64::to_bits),
            sim.fault_report(),
        )
    };
    let (flits_a, throttled_a, lat_a, report_a) = run();
    let (flits_b, throttled_b, lat_b, report_b) = run();
    assert_eq!(flits_a, flits_b);
    assert_eq!(throttled_a, throttled_b);
    assert_eq!(lat_a, lat_b);
    assert_eq!(report_a, report_b, "fault counters must replay exactly");
    // The plan is noisy enough that something must actually have happened.
    let sb = report_a.sideband.unwrap();
    assert!(sb.lost_snapshots > 0 && sb.delayed_snapshots > 0);
    assert!(report_a.link_stall_cycles > 0);
    assert!(report_a.hotspot_stall_cycles > 0);
}

/// Link and hotspot stalls block flits only inside their windows: traffic
/// backed up behind a fault drains completely once the window closes.
#[test]
fn network_faults_stall_then_recover() {
    let mut net = wormsim::Network::new(NetConfig::small(DeadlockMode::Avoidance)).unwrap();
    net.install_faults(FaultPlan {
        seed: 1,
        sideband: SidebandFaults::none(),
        links: vec![LinkFault {
            node: 0,
            port: 1,
            start: 500,
            end: 2_500,
        }],
        hotspots: vec![HotspotFault {
            node: 9,
            start: 500,
            end: 2_500,
        }],
    })
    .unwrap();
    let nodes = net.torus().node_count();
    let mut runner = traffic::WorkloadRunner::new(
        &Workload::steady(Pattern::UniformRandom, Process::bernoulli(0.01)),
        nodes,
        5,
    )
    .unwrap();
    let mut ctl = wormsim::NoControl;
    net.run(3_000, &mut |now, node| runner.poll(now, node), &mut ctl);
    let mut silent = |_: u64, _: usize| None;
    net.run(30_000, &mut silent, &mut ctl);
    let c = net.counters();
    assert!(
        c.link_stall_cycles > 0,
        "the faulted link must have blocked flits"
    );
    assert!(
        c.hotspot_stall_cycles > 0,
        "the hotspot must have blocked deliveries"
    );
    assert_eq!(
        c.generated_packets, c.delivered_packets,
        "everything drains once the fault windows close"
    );
    assert_eq!(net.live_packets(), 0);
}

/// A plan naming a node outside the topology is rejected at construction,
/// not discovered mid-run.
#[test]
fn invalid_plans_are_rejected_up_front() {
    let plan = FaultPlan {
        seed: 0,
        sideband: SidebandFaults::none(),
        links: vec![],
        hotspots: vec![HotspotFault {
            node: 10_000,
            start: 0,
            end: 100,
        }],
    };
    let err = Simulation::with_faults(
        cfg(
            Scheme::Base,
            NetConfig::small(DeadlockMode::Avoidance),
            0.01,
            5_000,
            1,
        ),
        plan,
    )
    .expect_err("out-of-range node must be rejected");
    assert!(matches!(err, SimError::Faults(_)), "got {err}");
}
