//! Property-based invariants of the full simulator, driven through the
//! public API with randomized workloads and configurations.

use proptest::prelude::*;
use stcc::prelude::*;
use traffic::WorkloadRunner;
use wormsim::{Network, NoControl};

fn pattern_strategy() -> impl Strategy<Value = Pattern> {
    prop_oneof![
        Just(Pattern::UniformRandom),
        Just(Pattern::BitReversal),
        Just(Pattern::PerfectShuffle),
        Just(Pattern::Butterfly),
        Just(Pattern::BitComplement),
        Just(Pattern::Transpose),
    ]
}

fn mode_strategy() -> impl Strategy<Value = DeadlockMode> {
    prop_oneof![
        Just(DeadlockMode::Avoidance),
        Just(DeadlockMode::Recovery { timeout: 8 }),
        Just(DeadlockMode::Recovery { timeout: 64 }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Every delivered packet obeys basic causality and its latency is at
    /// least the minimal pipeline time for its path; flit accounting is
    /// exact after a full drain.
    #[test]
    fn delivery_records_are_causal_and_conserved(
        pattern in pattern_strategy(),
        mode in mode_strategy(),
        rate in 0.001f64..0.04,
        seed in any::<u64>(),
    ) {
        let mut net = Network::new(NetConfig::small(mode)).unwrap();
        let nodes = net.torus().node_count();
        let wl = Workload::steady(pattern, Process::bernoulli(rate));
        let mut runner = WorkloadRunner::new(&wl, nodes, seed).unwrap();
        let mut ctl = NoControl;
        let mut records = Vec::new();
        for _ in 0..40 {
            net.run(100, &mut |now, node| runner.poll(now, node), &mut ctl);
            records.extend(net.drain_deliveries());
        }
        let mut silent = |_: u64, _: usize| None;
        net.run(300_000, &mut silent, &mut ctl);
        records.extend(net.drain_deliveries());

        let c = net.counters();
        prop_assert_eq!(c.generated_packets, c.delivered_packets, "full drain");
        prop_assert_eq!(net.live_packets(), 0);
        prop_assert_eq!(records.len() as u64, c.delivered_packets);
        let torus = net.torus();
        for r in &records {
            prop_assert!(r.generated_at <= r.injected_at);
            prop_assert!(r.injected_at < r.delivered_at);
            let dist = torus.distance(r.src, r.dst) as u64;
            // Header: >= 2 cycles/hop of wire+crossbar; body: 1 flit/cycle.
            let floor = 2 * dist + u64::from(r.len) - 1;
            prop_assert!(
                r.network_latency() >= floor,
                "latency {} under physical floor {} (dist {})",
                r.network_latency(), floor, dist
            );
        }
    }

    /// The throttle only ever delays packets — with the same workload, the
    /// set of generated packets is identical under any controller, and
    /// nothing is lost.
    #[test]
    fn controllers_never_lose_packets(
        mode in mode_strategy(),
        rate in 0.005f64..0.08,
        seed in any::<u64>(),
    ) {
        for scheme in [Scheme::Alo, Scheme::tuned_paper()] {
            let mut sim = Simulation::new(SimConfig {
                net: NetConfig::small(mode),
                workload: Workload::steady(Pattern::UniformRandom, Process::bernoulli(rate)),
                scheme,
                cycles: 6_000,
                warmup: 1_000,
                seed,
            }).unwrap();
            sim.run_to_end();
            let c = sim.network().counters();
            prop_assert!(c.delivered_packets <= c.generated_packets);
            prop_assert_eq!(
                c.generated_packets - c.delivered_packets,
                net_undelivered(sim.network()),
                "undelivered packets are all accounted for in queues/flight"
            );
        }
    }

    /// The full-buffer census used by the side-band never exceeds the
    /// number of buffers that exist.
    #[test]
    fn census_is_bounded(
        mode in mode_strategy(),
        rate in 0.02f64..0.1,
        seed in any::<u64>(),
    ) {
        let mut net = Network::new(NetConfig::small(mode)).unwrap();
        let nodes = net.torus().node_count();
        let wl = Workload::steady(Pattern::UniformRandom, Process::bernoulli(rate));
        let mut runner = WorkloadRunner::new(&wl, nodes, seed).unwrap();
        let mut ctl = NoControl;
        for _ in 0..30 {
            net.run(200, &mut |now, node| runner.poll(now, node), &mut ctl);
            prop_assert!(net.full_buffer_count() <= net.total_vc_buffers());
        }
    }
}

use stcc::Simulation;

fn net_undelivered(net: &Network) -> u64 {
    net.live_packets() as u64
}
