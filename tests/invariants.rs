//! Randomized invariants of the full simulator, driven through the public
//! API with seeded workloads and configurations.
//!
//! Formerly written with `proptest`; rewritten as seeded in-tree sweeps so
//! the workspace builds with no network access (see README "Hermetic
//! build"). Enable the root `slow-proptests` feature for a wider sweep.

use stcc::prelude::*;
use stcc::Simulation;
use traffic::{splitmix64, WorkloadRunner};
use wormsim::{Network, NoControl};

const CASES: u64 = if cfg!(feature = "slow-proptests") {
    24
} else {
    6
};

fn pattern_for(idx: u64) -> Pattern {
    match idx % 6 {
        0 => Pattern::UniformRandom,
        1 => Pattern::BitReversal,
        2 => Pattern::PerfectShuffle,
        3 => Pattern::Butterfly,
        4 => Pattern::BitComplement,
        _ => Pattern::Transpose,
    }
}

fn mode_for(idx: u64) -> DeadlockMode {
    match idx % 3 {
        0 => DeadlockMode::Avoidance,
        1 => DeadlockMode::Recovery { timeout: 8 },
        _ => DeadlockMode::Recovery { timeout: 64 },
    }
}

/// Every delivered packet obeys basic causality and its latency is at least
/// the minimal pipeline time for its path; flit accounting is exact after a
/// full drain.
#[test]
fn delivery_records_are_causal_and_conserved() {
    for case in 0..CASES {
        let mut s = 0xCA5E_0000 + case;
        let pattern = pattern_for(splitmix64(&mut s));
        let mode = mode_for(splitmix64(&mut s));
        let rate = 0.001 + (splitmix64(&mut s) % 1000) as f64 / 1000.0 * 0.039;
        let seed = splitmix64(&mut s);

        let mut net = Network::new(NetConfig::small(mode)).unwrap();
        let nodes = net.torus().node_count();
        let wl = Workload::steady(pattern, Process::bernoulli(rate));
        let mut runner = WorkloadRunner::new(&wl, nodes, seed).unwrap();
        let mut ctl = NoControl;
        let mut records = Vec::new();
        for _ in 0..40 {
            net.run(100, &mut |now, node| runner.poll(now, node), &mut ctl);
            records.extend(net.drain_deliveries());
        }
        let mut silent = |_: u64, _: usize| None;
        for _ in 0..30 {
            if net.live_packets() == 0 {
                break;
            }
            net.run(10_000, &mut silent, &mut ctl);
        }
        records.extend(net.drain_deliveries());

        let c = net.counters();
        assert_eq!(
            c.generated_packets, c.delivered_packets,
            "full drain (case {case})"
        );
        assert_eq!(net.live_packets(), 0);
        assert_eq!(records.len() as u64, c.delivered_packets);
        let torus = net.torus();
        for r in &records {
            assert!(r.generated_at <= r.injected_at);
            assert!(r.injected_at < r.delivered_at);
            let dist = torus.distance(r.src, r.dst) as u64;
            // Header: >= 2 cycles/hop of wire+crossbar; body: 1 flit/cycle.
            let floor = 2 * dist + u64::from(r.len) - 1;
            assert!(
                r.network_latency() >= floor,
                "latency {} under physical floor {floor} (dist {dist}, case {case})",
                r.network_latency(),
            );
        }
    }
}

/// The throttle only ever delays packets — with the same workload, the set
/// of generated packets is identical under any controller, and nothing is
/// lost.
#[test]
fn controllers_never_lose_packets() {
    for case in 0..CASES {
        let mut s = 0x10CC_0000 + case;
        let mode = mode_for(splitmix64(&mut s));
        let rate = 0.005 + (splitmix64(&mut s) % 1000) as f64 / 1000.0 * 0.075;
        let seed = splitmix64(&mut s);
        for scheme in [Scheme::Alo, Scheme::tuned_paper()] {
            let mut sim = Simulation::new(SimConfig {
                net: NetConfig::small(mode),
                workload: Workload::steady(Pattern::UniformRandom, Process::bernoulli(rate)),
                scheme,
                cycles: 6_000,
                warmup: 1_000,
                seed,
            })
            .unwrap();
            sim.run_to_end();
            let c = sim.network().counters();
            assert!(c.delivered_packets <= c.generated_packets);
            assert_eq!(
                c.generated_packets - c.delivered_packets,
                sim.network().live_packets() as u64,
                "undelivered packets are all accounted for in queues/flight (case {case})"
            );
        }
    }
}

/// The full-buffer census used by the side-band never exceeds the number of
/// buffers that exist.
#[test]
fn census_is_bounded() {
    for case in 0..CASES {
        let mut s = 0xCE45_0000 + case;
        let mode = mode_for(splitmix64(&mut s));
        let rate = 0.02 + (splitmix64(&mut s) % 1000) as f64 / 1000.0 * 0.08;
        let seed = splitmix64(&mut s);

        let mut net = Network::new(NetConfig::small(mode)).unwrap();
        let nodes = net.torus().node_count();
        let wl = Workload::steady(Pattern::UniformRandom, Process::bernoulli(rate));
        let mut runner = WorkloadRunner::new(&wl, nodes, seed).unwrap();
        let mut ctl = NoControl;
        for _ in 0..30 {
            net.run(200, &mut |now, node| runner.poll(now, node), &mut ctl);
            assert!(net.full_buffer_count() <= net.total_vc_buffers());
        }
    }
}
