//! Root facade crate: re-exports for the examples and integration tests.
#![doc = "Reproduction of Self-Tuned Congestion Control for Multiprocessor Networks (HPCA 2001). See README.md."]

pub use experiments;
pub use kncube;
pub use sideband;
pub use simstats;
pub use stcc;
pub use traffic;
pub use wormsim;
