#!/bin/bash
# The repository's CI gate, runnable locally and fully offline:
#   1. formatting        (cargo fmt --check)
#   2. lints             (cargo clippy, warnings are errors)
#   3. rustdoc audit     (broken intra-doc links are errors)
#   4. tier-1 verify     (cargo build --release && cargo test -q)
#   5. workspace tests   (incl. the golden determinism suite)
#   6. conformance       (every controller through the shared battery)
#   7. zero-alloc gate   (steady-state cycles make no heap allocations)
#   8. controller smoke  (fig_controllers tiny sweep must match golden)
#   9. parallel smoke    (a --jobs 4 sweep through the runner)
#  10. kill-and-resume   (SIGKILL a sweep mid-run, finish it with --resume)
#  11. audited sweep     (STCC_AUDIT=256 fig2 run must still match golden)
#  12. shard gate        (STCC_SHARDS=4 and =8 audited sweeps vs golden,
#                         plus a SIGKILL + --resume smoke at STCC_SHARDS=8)
#  13. chaos smoke       (fixed-seed chaos trials at random shard counts,
#                         kill/resume determinism)
#  14. campaign smoke    (orchestrator retry/quarantine + kill/resume)
#  15. tiny bench gate   (always on: 64-node preset, >50% regression fails)
#  16. paper bench gate  (opt-in: STCC_BENCH_GATE=1, >15% regression fails)
# Everything is hermetic — no network access is required (see README,
# "Hermetic build"). Each step reports its wall time.
set -eu
cd "$(dirname "$0")/.."

step() {
    name=$1
    shift
    echo "=== $name"
    start=$(date +%s)
    "$@"
    echo "=== $name done in $(($(date +%s) - start))s"
}

step "fmt" cargo fmt --all --check

step "clippy" cargo clippy --workspace --all-targets -- -D warnings

# The simulator hot path moves state by value; an oversized enum variant
# there silently turns every copy into a memcpy.
step "clippy: netsim enum-size audit" \
    cargo clippy -p wormsim --all-targets -- \
    -D warnings -D clippy::large_enum_variant

# Rustdoc audit: a placeholder or rotted intra-doc link is a build error.
rustdoc_audit() {
    RUSTDOCFLAGS="-D rustdoc::broken_intra_doc_links" \
        cargo doc --workspace --no-deps --quiet
}
step "rustdoc audit" rustdoc_audit

step "tier-1: build" cargo build --release

# The gates below invoke target/release/{fig4,chaos,bench_netsim} directly;
# the root-package build above only guarantees the libraries, so build every
# workspace binary explicitly rather than trusting leftovers.
step "release binaries" cargo build --release --workspace

step "tier-1: test" cargo test -q

step "workspace tests" cargo test --workspace -q

# Controller conformance: every controller in the registry (plus a static
# representative) through the shared five-property battery — checkpoint
# bit-equality, fast-forward veto/equivalence, audit-clean stepping,
# watchdog fail-open, and the synthetic-census throttle gate. Part of the
# workspace run too; named so a conformance break is unmistakable.
step "controller conformance" \
    cargo test -q -p stcc --test controller_conformance

# Zero-allocation gate: after warmup, saturated simulation cycles (in both
# deadlock modes, drains included) must perform zero heap allocations. The
# counting allocator lives in its own test binary, so this runs alone.
step "zero-alloc steady state" cargo test -q -p wormsim --test zero_alloc

# Golden determinism: fig2/fig4/fig5 must match the committed snapshots
# byte-for-byte at --jobs 1, 2 and 8 (already part of the workspace run;
# kept as an explicit named gate so a failure is unmistakable).
step "golden determinism" cargo test -q -p experiments --test golden

# Controller-zoo smoke: the head-to-head binary end to end (CLI, runner,
# CSV emission) at a job count the golden suite doesn't use; the output
# must still match the committed golden byte for byte.
controllers_smoke() {
    out=target/ci-controllers
    rm -rf "$out"
    cargo run --release -q -p experiments --bin fig_controllers -- \
        --scale tiny --net small --jobs 4 --out "$out" >/dev/null
    cmp "$out/fig_controllers.tiny.csv" \
        crates/experiments/tests/golden/fig_controllers.tiny.csv
}
step "controller zoo smoke (fig_controllers vs golden)" controllers_smoke

# Parallel smoke: one real sweep binary through the runner at --jobs 4.
step "parallel smoke (--jobs 4)" \
    cargo run --release -q -p experiments --bin fig2 -- \
    --scale tiny --net small --jobs 4 --out target/ci-smoke

# Kill-and-resume: start the tiny fig4 sweep, SIGKILL it as soon as its
# journal records the first completed point, then finish with --resume and
# require the final CSV to be byte-identical to the committed golden. If
# the run wins the race and completes before the kill lands, the resume
# pass degenerates to a fresh run — the byte-compare still gates.
resume_gate() {
    out=target/ci-resume
    rm -rf "$out"
    bin=target/release/fig4
    "$bin" --scale tiny --net small --jobs 1 --out "$out" >/dev/null 2>&1 &
    pid=$!
    for _ in $(seq 1 500); do
        if [ -f "$out/fig4.tiny.journal" ] &&
            [ "$(wc -l <"$out/fig4.tiny.journal")" -ge 2 ]; then
            break
        fi
        if ! kill -0 "$pid" 2>/dev/null; then
            break
        fi
        sleep 0.01
    done
    if kill -9 "$pid" 2>/dev/null; then
        echo "  (killed sweep pid $pid mid-run)"
    else
        echo "  (sweep finished before the kill; resume runs fresh)"
    fi
    wait "$pid" 2>/dev/null || true
    "$bin" --scale tiny --net small --jobs 1 --out "$out" --resume >/dev/null
    cmp "$out/fig4.tiny.csv" crates/experiments/tests/golden/fig4.tiny.csv
    if [ -f "$out/fig4.tiny.journal" ]; then
        echo "journal not cleaned up after a successful sweep" >&2
        return 1
    fi
}
step "kill-and-resume smoke" resume_gate

# Audited sweep: the invariant audit layer (STCC_AUDIT, full-scan checks
# every 256 cycles plus every checkpoint/restore boundary) must not change
# a single output byte — auditing observes, never perturbs.
audited_sweep() {
    out=target/ci-audit
    rm -rf "$out"
    STCC_AUDIT=256 cargo run --release -q -p experiments --bin fig2 -- \
        --scale tiny --net small --jobs 2 --out "$out" >/dev/null
    cmp "$out/fig2.tiny.csv" crates/experiments/tests/golden/fig2.tiny.csv
}
step "audited sweep (STCC_AUDIT=256 vs golden)" audited_sweep

# Shard gate: intra-network sharding must not change a single output byte.
# First audited fig2 sweeps stepping every simulation across 4 and then 8
# shards — byte-compared to the same golden the unsharded runs match, with
# the audit's shard invariants (mailbox conservation including the
# boundary tails, partition disjointness, per-shard census) scanning every
# 256 cycles. Then the kill-and-resume pattern at STCC_SHARDS=8: a journal
# written by an unsharded run earlier in this script is interchangeable
# with a sharded one, and vice versa, even at the widest shard count the
# chaos harness draws.
shard_gate() {
    out=target/ci-shards
    for shards in 4 8; do
        rm -rf "$out"
        STCC_SHARDS=$shards STCC_AUDIT=256 cargo run --release -q -p experiments --bin fig2 -- \
            --scale tiny --net small --jobs 2 --out "$out" >/dev/null
        cmp "$out/fig2.tiny.csv" crates/experiments/tests/golden/fig2.tiny.csv
    done

    bin=target/release/fig4
    STCC_SHARDS=8 "$bin" --scale tiny --net small --jobs 1 --out "$out" \
        >/dev/null 2>&1 &
    pid=$!
    for _ in $(seq 1 500); do
        if [ -f "$out/fig4.tiny.journal" ] &&
            [ "$(wc -l <"$out/fig4.tiny.journal")" -ge 2 ]; then
            break
        fi
        if ! kill -0 "$pid" 2>/dev/null; then
            break
        fi
        sleep 0.01
    done
    if kill -9 "$pid" 2>/dev/null; then
        echo "  (killed sharded sweep pid $pid mid-run)"
    else
        echo "  (sharded sweep finished before the kill; resume runs fresh)"
    fi
    wait "$pid" 2>/dev/null || true
    STCC_SHARDS=8 "$bin" --scale tiny --net small --jobs 1 --out "$out" --resume \
        >/dev/null
    cmp "$out/fig4.tiny.csv" crates/experiments/tests/golden/fig4.tiny.csv
}
step "shard gate (STCC_SHARDS=4/8 vs golden, resume at STCC_SHARDS=8)" shard_gate

# Chaos smoke: a short fixed-seed slice of the chaos harness — random
# configs × patterns × fault storms, per-trial audits, a mid-trial
# checkpoint/restore divergence check — with one SIGKILL + --resume thrown
# in. The resumed report must be byte-identical to an uninterrupted run's.
chaos_gate() {
    out=target/ci-chaos
    rm -rf "$out" "$out-fresh"
    bin=target/release/chaos
    "$bin" --seed 6 --trials 12 --out "$out" >/dev/null 2>&1 &
    pid=$!
    for _ in $(seq 1 500); do
        if [ -f "$out/chaos.journal" ] &&
            [ "$(wc -l <"$out/chaos.journal")" -ge 3 ]; then
            break
        fi
        if ! kill -0 "$pid" 2>/dev/null; then
            break
        fi
        sleep 0.01
    done
    if kill -9 "$pid" 2>/dev/null; then
        echo "  (killed chaos pid $pid mid-run)"
    else
        echo "  (chaos finished before the kill; resume runs fresh)"
    fi
    wait "$pid" 2>/dev/null || true
    "$bin" --seed 6 --trials 12 --out "$out" --resume >/dev/null 2>&1
    "$bin" --seed 6 --trials 12 --out "$out-fresh" >/dev/null 2>&1
    cmp "$out/chaos.report" "$out-fresh/chaos.report"
    if [ -f "$out/chaos.journal" ]; then
        echo "chaos journal not cleaned up after a successful run" >&2
        return 1
    fi
}
step "chaos smoke (fixed seed, kill/resume determinism)" chaos_gate

# Campaign supervision: the multi-process orchestrator end to end. First a
# rigged manifest — one scenario's worker crashes on its first attempt (must
# be retried to success), another crashes on every attempt (must be
# quarantined while the campaign continues and exits 4). Then the committed
# example manifest runs clean, the same campaign is SIGKILLed once its
# ledger holds completed rows, and --resume must reproduce the
# uninterrupted report byte for byte.
campaign_gate() {
    out=target/ci-campaign
    rm -rf "$out"
    mkdir -p "$out"
    bin=target/release/campaign
    cat >"$out/rig.toml" <<'EOF'
[campaign]
name = "ci-rig"
seed = 9
retries = 1
backoff_ms = 1
timeout_s = 60
workers = 2

[scenario.flaky]
net = "small"
scale = "tiny"
schemes = ["tune"]
patterns = ["uniform-random"]
rates = [0.005]

[scenario.doomed]
net = "small"
scale = "tiny"
schemes = ["base"]
patterns = ["transpose"]
rates = [0.005]
EOF
    status=0
    STCC_CAMPAIGN_FAIL='flaky:1,doomed:all' \
        "$bin" --manifest "$out/rig.toml" --out "$out/rig" >/dev/null 2>&1 ||
        status=$?
    if [ "$status" -ne 4 ]; then
        echo "rigged campaign exited $status, want 4 (quarantined)" >&2
        return 1
    fi
    grep -q 'ok-retried' "$out/rig/campaign.report"
    grep -q 'quarantined 1' "$out/rig/campaign.report"

    "$bin" --manifest examples/campaign.toml --out "$out/ref" >/dev/null
    "$bin" --manifest examples/campaign.toml --out "$out/killed" \
        >/dev/null 2>&1 &
    pid=$!
    for _ in $(seq 1 500); do
        if [ -f "$out/killed/campaign.ledger" ] &&
            [ "$(wc -l <"$out/killed/campaign.ledger")" -ge 2 ]; then
            break
        fi
        if ! kill -0 "$pid" 2>/dev/null; then
            break
        fi
        sleep 0.01
    done
    if kill -9 "$pid" 2>/dev/null; then
        echo "  (killed campaign pid $pid mid-run)"
    else
        echo "  (campaign finished before the kill; resume runs fresh)"
    fi
    wait "$pid" 2>/dev/null || true
    "$bin" --manifest examples/campaign.toml --out "$out/killed" --resume \
        >/dev/null
    cmp "$out/killed/campaign.report" "$out/ref/campaign.report"
    cmp "$out/killed/campaign.csv" "$out/ref/campaign.csv"
    if [ -f "$out/killed/campaign.ledger" ]; then
        echo "campaign ledger not retired after a successful run" >&2
        return 1
    fi
}
step "campaign smoke (retry/quarantine, kill/resume determinism)" campaign_gate

# Perf regression gates. The tiny (64-node) gate always runs: it takes a
# few seconds and its 50% tolerance only has to catch order-of-magnitude
# cliffs, so it stays stable across hosts and a noisy shared core. The
# paper-preset gate is opt-in because the committed BENCH_netsim.json was
# measured on one specific host: any headline metric >15% worse fails.
step "bench gate (tiny preset, vs BENCH_netsim_tiny.json)" \
    cargo run --release -q -p bench --bin bench_netsim -- \
    --preset tiny --tolerance 0.5 --gate BENCH_netsim_tiny.json
if [ "${STCC_BENCH_GATE:-0}" = "1" ]; then
    step "bench gate (paper preset, vs BENCH_netsim.json)" \
        cargo run --release -q -p bench --bin bench_netsim -- \
        --gate BENCH_netsim.json
fi

echo "CI green."
