#!/bin/bash
# The repository's CI gate, runnable locally and fully offline:
#   1. formatting        (cargo fmt --check)
#   2. lints             (cargo clippy, warnings are errors)
#   3. tier-1 verify     (cargo build --release && cargo test -q)
#   4. workspace tests   (incl. the golden determinism suite)
#   5. parallel smoke    (a --jobs 4 sweep through the runner)
# Everything is hermetic — no network access is required (see README,
# "Hermetic build"). Each step reports its wall time.
set -eu
cd "$(dirname "$0")/.."

step() {
    name=$1
    shift
    echo "=== $name"
    start=$(date +%s)
    "$@"
    echo "=== $name done in $(($(date +%s) - start))s"
}

step "fmt" cargo fmt --all --check

step "clippy" cargo clippy --workspace --all-targets -- -D warnings

step "tier-1: build" cargo build --release

step "tier-1: test" cargo test -q

step "workspace tests" cargo test --workspace -q

# Golden determinism: fig2/fig4/fig5 must match the committed snapshots
# byte-for-byte at --jobs 1, 2 and 8 (already part of the workspace run;
# kept as an explicit named gate so a failure is unmistakable).
step "golden determinism" cargo test -q -p experiments --test golden

# Parallel smoke: one real sweep binary through the runner at --jobs 4.
step "parallel smoke (--jobs 4)" \
    cargo run --release -q -p experiments --bin fig2 -- \
    --scale tiny --net small --jobs 4 --out target/ci-smoke

echo "CI green."
