#!/bin/bash
# The repository's CI gate, runnable locally and fully offline:
#   1. formatting        (cargo fmt --check)
#   2. lints             (cargo clippy, warnings are errors)
#   3. tier-1 verify     (cargo build --release && cargo test -q)
# Everything is hermetic — no network access is required (see README,
# "Hermetic build").
set -eu
cd "$(dirname "$0")/.."

echo "=== fmt"
cargo fmt --all --check

echo "=== clippy"
cargo clippy --workspace --all-targets -- -D warnings

echo "=== tier-1: build"
cargo build --release

echo "=== tier-1: test"
cargo test -q

echo "=== workspace tests"
cargo test --workspace -q

echo "CI green."
