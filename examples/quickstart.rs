//! Quickstart: run the paper's self-tuned congestion control on a small
//! wormhole torus and print what it delivered.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use stcc::prelude::*;
use stcc::Simulation;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An 8-ary 2-cube (64 nodes) with Disha deadlock recovery, uniform
    // random traffic at 0.02 packets/node/cycle — comfortably beyond this
    // network's saturation point, where an uncontrolled network collapses.
    let cfg = SimConfig {
        net: NetConfig::small(DeadlockMode::PAPER_RECOVERY),
        workload: Workload::steady(Pattern::UniformRandom, Process::bernoulli(0.02)),
        scheme: Scheme::tuned_paper(),
        cycles: 30_000,
        warmup: 5_000,
        seed: 42,
    };
    let mut sim = Simulation::new(cfg)?;
    sim.run_to_end();

    let s = sim.summary()?;
    println!("nodes                : {}", s.nodes);
    println!(
        "offered load         : {:.4} packets/node/cycle",
        s.offered_rate
    );
    println!(
        "delivered bandwidth  : {:.4} flits/node/cycle",
        s.throughput_flits()
    );
    println!("delivered packets    : {}", s.delivered_packets);
    println!(
        "mean network latency : {:.1} cycles",
        s.network_latency.mean().unwrap_or(f64::NAN)
    );
    println!("throttled injections : {}", s.throttled_injections);
    if let Some(t) = sim.tuned() {
        println!(
            "final threshold      : {:.0} full buffers (of {})",
            t.threshold().unwrap_or(f64::NAN),
            sim.network().total_vc_buffers()
        );
        println!("tuning decisions     : {}", t.tune_events());
    }
    Ok(())
}
