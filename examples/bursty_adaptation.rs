//! Bursty adaptation: watch the self-tuned threshold move as the workload
//! alternates between quiet phases and heavy bursts of changing
//! communication patterns (the paper's Figures 6 and 7, in miniature).
//!
//! ```sh
//! cargo run --release --example bursty_adaptation
//! ```

use stcc::prelude::*;
use stcc::Simulation;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let phase = 6_000u64;
    let workload = Workload::bursty(phase, 1_500, 15);
    let cycles = 9 * phase;
    let cfg = SimConfig {
        net: NetConfig::small(DeadlockMode::PAPER_RECOVERY),
        workload: workload.clone(),
        scheme: Scheme::tuned_paper(),
        cycles,
        warmup: phase / 2,
        seed: 99,
    };
    let mut sim = Simulation::new(cfg)?;

    println!(
        "{:>8} {:>18} {:>10} {:>12} {:>10}",
        "cycle", "pattern", "offered", "tput(flits)", "threshold"
    );
    let window = 2_000u64;
    let mut last_flits = 0u64;
    while sim.now() < cycles {
        sim.step();
        if sim.now() % window == 0 {
            let now = sim.now();
            let cum = sim.network().delivered_flits_cum();
            let tput = (cum - last_flits) as f64
                / (window as f64 * sim.network().torus().node_count() as f64);
            last_flits = cum;
            let (phase_idx, _) = workload.phase_at(now);
            let p = &workload.phases()[phase_idx];
            let threshold = sim
                .tuned()
                .and_then(stcc::SelfTuned::threshold)
                .unwrap_or(f64::NAN);
            println!(
                "{now:>8} {:>18} {:>10.4} {tput:>12.4} {threshold:>10.0}",
                p.pattern.name(),
                p.process.offered_rate(),
            );
        }
    }
    let s = sim.summary()?;
    println!(
        "\nmean latency {:.1} cycles over {} delivered packets",
        s.network_latency.mean().unwrap_or(f64::NAN),
        s.delivered_packets
    );
    Ok(())
}
