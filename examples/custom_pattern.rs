//! Custom workload on the raw simulator API: a hotspot pattern driven
//! through `wormsim::Network` directly, with the ALO and self-tuned
//! controllers plugged in via the `CongestionControl` trait.
//!
//! Demonstrates the substrate-level API (everything below the `Simulation`
//! facade): you provide a source closure and a controller, the network does
//! the rest.
//!
//! ```sh
//! cargo run --release --example custom_pattern
//! ```

use stcc::{AloControl, SelfTuned, TuneConfig};
use traffic::SimRng;
use wormsim::{CongestionControl, DeadlockMode, NetConfig, Network, NoControl};

/// 30% of packets target node 0; the rest go to uniformly random nodes.
fn hotspot_source(rng: &mut SimRng, nodes: usize, node: usize) -> Option<usize> {
    // ~0.03 packets/node/cycle offered.
    if rng.random() >= 0.03 {
        return None;
    }
    if rng.random() < 0.3 {
        Some(0)
    } else {
        let d = rng.random_index(0..nodes - 1);
        Some(if d >= node { d + 1 } else { d })
    }
}

fn run(ctl: &mut dyn CongestionControl) -> (f64, u64) {
    let mut net =
        Network::new(NetConfig::small(DeadlockMode::PAPER_RECOVERY)).expect("valid small network");
    let nodes = net.torus().node_count();
    let mut rng = SimRng::seed_from_u64(0x407);
    let cycles = 30_000u64;
    let mut source = move |_now: u64, node: usize| hotspot_source(&mut rng, nodes, node);
    net.run(cycles, &mut source, ctl);
    let tput = net.counters().delivered_flits as f64 / (cycles as f64 * nodes as f64);
    (tput, net.counters().throttled_injections)
}

fn main() {
    println!("hotspot workload (30% of traffic to node 0), 8-ary 2-cube, recovery");
    println!(
        "{:<10} {:>14} {:>12}",
        "scheme", "tput (flits)", "throttled"
    );
    let (tput, thr) = run(&mut NoControl);
    println!("{:<10} {tput:>14.4} {thr:>12}", "base");
    let (tput, thr) = run(&mut AloControl::new());
    println!("{:<10} {tput:>14.4} {thr:>12}", "alo");
    let mut tuned = SelfTuned::new(TuneConfig::paper());
    let (tput, thr) = run(&mut tuned);
    println!("{:<10} {tput:>14.4} {thr:>12}", "tune");
    println!(
        "\ntune finished with threshold {:.0} full buffers",
        tuned.threshold().unwrap_or(f64::NAN)
    );
}
