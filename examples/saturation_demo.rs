//! Saturation demo: the phenomenon of the paper's Figure 1, side by side
//! with its cure.
//!
//! Runs the same oversaturating uniform-random load through an uncontrolled
//! network, the ALO baseline and the self-tuned throttle, and prints the
//! delivered bandwidth of each. The uncontrolled deadlock-recovery network
//! collapses to roughly the recovery-token bandwidth; the self-tuned
//! throttle keeps it near peak.
//!
//! ```sh
//! cargo run --release --example saturation_demo
//! ```

use stcc::prelude::*;
use stcc::Simulation;

fn run(scheme: Scheme, rate: f64) -> Result<(f64, f64), Box<dyn std::error::Error>> {
    // The avalanche needs the paper's full-size 16-ary 2-cube — smaller
    // tori saturate gracefully (see DESIGN.md §5b).
    let cfg = SimConfig {
        net: NetConfig::paper(DeadlockMode::PAPER_RECOVERY),
        workload: Workload::steady(Pattern::UniformRandom, Process::bernoulli(rate)),
        scheme,
        cycles: 30_000,
        warmup: 6_000,
        seed: 7,
    };
    let mut sim = Simulation::new(cfg)?;
    sim.run_to_end();
    let s = sim.summary()?;
    Ok((
        s.throughput_flits(),
        s.network_latency.mean().unwrap_or(f64::NAN),
    ))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("16-ary 2-cube, deadlock recovery, uniform random (takes ~1 min)");
    println!(
        "{:<10} {:>8} {:>14} {:>12}",
        "scheme", "offered", "tput (flits)", "latency"
    );
    for rate in [0.01, 0.06] {
        for scheme in [Scheme::Base, Scheme::Alo, Scheme::tuned_paper()] {
            let label = scheme.label();
            let (tput, lat) = run(scheme, rate)?;
            println!("{label:<10} {rate:>8.3} {tput:>14.4} {lat:>12.1}");
        }
        println!();
    }
    println!("note how base/alo collapse at offered 0.06 while tune sustains.");
    Ok(())
}
